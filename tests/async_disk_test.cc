// The asynchronous disk submission ring (storage/disk_manager.h) and the
// adaptive readahead window built on it (exec/readahead.h).
//
//  - one completion worker drains the ring in submission order (FIFO);
//  - concurrent async Fetches of the same cold page collapse onto one
//    physical read (the kLoading frame protocol), and the exact accounting
//    invariant logical_reads == buffer_hits + physical_reads() holds;
//  - ColdReset cancels the queued backlog instead of waiting out its
//    simulated latency, and cancelled reads charge nothing;
//  - the adaptive window controller follows its integer control law
//    (widen on consumed prefetches, narrow on waste or rejection);
//  - merged scan feedback is bit-for-bit identical to the serial oracle
//    for every thread count x window x adaptive-mode combination.

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/parallel_scan.h"
#include "exec/readahead.h"
#include "exec/scan_ops.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "tests/test_util.h"
#include "workload/synthetic.h"

namespace dpcf {
namespace {

using testing::SyntheticDbTest;

constexpr uint32_t kPageSize = 256;

// Writes kPages pages whose first byte is the page number.
SegmentId FillSegment(DiskManager* disk, PageNo pages) {
  SegmentId seg = disk->CreateSegment("t");
  std::vector<char> buf(disk->page_size(), 0);
  for (PageNo p = 0; p < pages; ++p) {
    disk->AllocatePage(seg);
    buf[0] = static_cast<char>(p);
    EXPECT_TRUE(disk->WritePage(PageId{seg, p}, buf.data()).ok());
  }
  return seg;
}

void CheckExactInvariant(const IoStats& io, const char* what) {
  EXPECT_EQ(static_cast<int64_t>(io.logical_reads),
            static_cast<int64_t>(io.buffer_hits) + io.physical_reads())
      << what;
  EXPECT_LE(static_cast<int64_t>(io.prefetch_hits),
            static_cast<int64_t>(io.prefetch_reads))
      << what;
}

// ------------------------------------------------------------ raw ring

TEST(AsyncDiskTest, SingleWorkerCompletesInSubmissionOrder) {
  DiskManager disk(DiskManagerOptions{kPageSize, /*io_threads=*/1,
                                      /*queue_depth=*/64});
  const PageNo kPages = 24;
  SegmentId seg = FillSegment(&disk, kPages);

  std::vector<std::vector<char>> dst(kPages,
                                     std::vector<char>(kPageSize, 0));
  std::mutex order_mu;
  std::vector<PageNo> completed;
  std::vector<ReadRequest> batch;
  for (PageNo p = 0; p < kPages; ++p) {
    batch.push_back(ReadRequest{
        PageId{seg, p}, dst[p].data(), ReadClass::kDemand,
        [&order_mu, &completed, p](const Status& st) {
          EXPECT_TRUE(st.ok()) << st.ToString();
          std::lock_guard<std::mutex> hold(order_mu);
          completed.push_back(p);
        }});
  }
  disk.SubmitBatch(std::move(batch));
  disk.DrainSubmissions();

  ASSERT_EQ(completed.size(), kPages);
  for (PageNo p = 0; p < kPages; ++p) {
    EXPECT_EQ(completed[p], p) << "ring is FIFO with one worker";
    EXPECT_EQ(dst[p][0], static_cast<char>(p)) << "page " << p;
  }
  EXPECT_EQ(disk.pending_submissions(), 0u);
  EXPECT_EQ(disk.io_stats()->physical_reads(),
            static_cast<int64_t>(kPages));
}

TEST(AsyncDiskTest, SubmitBeyondQueueDepthBackpressuresNotDrops) {
  // 4x more requests than ring slots: producers must block, not drop.
  DiskManager disk(DiskManagerOptions{kPageSize, /*io_threads=*/2,
                                      /*queue_depth=*/8});
  const PageNo kPages = 32;
  SegmentId seg = FillSegment(&disk, kPages);

  std::vector<std::vector<char>> dst(kPages,
                                     std::vector<char>(kPageSize, 0));
  std::atomic<int> ok_count{0};
  for (PageNo p = 0; p < kPages; ++p) {
    disk.SubmitRead(PageId{seg, p}, dst[p].data(), ReadClass::kDemand,
                    [&ok_count](const Status& st) {
                      if (st.ok()) ok_count.fetch_add(1);
                    });
  }
  disk.DrainSubmissions();
  EXPECT_EQ(ok_count.load(), static_cast<int>(kPages));
  for (PageNo p = 0; p < kPages; ++p) {
    EXPECT_EQ(dst[p][0], static_cast<char>(p));
  }
}

TEST(AsyncDiskTest, DestructorCancelsQueuedReads) {
  const PageNo kPages = 64;
  std::vector<std::vector<char>> dst(kPages,
                                     std::vector<char>(kPageSize, 0));
  std::atomic<int> cancelled{0};
  std::atomic<int> completed{0};
  {
    DiskManager disk(DiskManagerOptions{kPageSize, /*io_threads=*/1,
                                        /*queue_depth=*/256});
    SegmentId seg = FillSegment(&disk, kPages);
    disk.set_read_latency_us(1000);  // the backlog would take ~64 ms
    std::vector<ReadRequest> batch;
    for (PageNo p = 0; p < kPages; ++p) {
      batch.push_back(ReadRequest{
          PageId{seg, p}, dst[p].data(), ReadClass::kPrefetch,
          [&cancelled, &completed](const Status& st) {
            (st.ok() ? completed : cancelled).fetch_add(1);
          }});
    }
    disk.SubmitBatch(std::move(batch));
    // Destroy with the ring still mostly full.
  }
  EXPECT_EQ(cancelled.load() + completed.load(),
            static_cast<int>(kPages))
      << "every submission gets exactly one completion call";
  EXPECT_GT(cancelled.load(), 0) << "the backlog was retired, not slept";
}

// ---------------------------------------------------- pool integration

TEST(AsyncDiskTest, ConcurrentFetchesShareOnePhysicalRead) {
  DiskManager disk(DiskManagerOptions{kPageSize, /*io_threads=*/4,
                                      /*queue_depth=*/256});
  const PageNo kPages = 32;
  SegmentId seg = FillSegment(&disk, kPages);
  disk.set_read_latency_us(200);  // widen the kLoading window

  BufferPool pool(&disk, /*capacity_pages=*/64,
                  BufferPoolOptions{/*num_shards=*/4,
                                    /*serialize_miss_io=*/false,
                                    /*async_io=*/true});
  const int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &failures, seg, t] {
      // Different start offsets maximize same-page contention.
      for (PageNo i = 0; i < kPages; ++i) {
        PageNo p = (i + static_cast<PageNo>(4 * t)) % kPages;
        auto guard = pool.Fetch(PageId{seg, p});
        if (!guard.ok() ||
            guard.value().data()[0] != static_cast<char>(p)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  const IoStats& io = *disk.io_stats();
  // Capacity exceeds the segment, so no eviction: the kLoading protocol
  // must collapse all concurrent misses of a page onto ONE physical read.
  EXPECT_EQ(io.physical_reads(), static_cast<int64_t>(kPages));
  EXPECT_EQ(static_cast<int64_t>(io.logical_reads),
            static_cast<int64_t>(kThreads) * kPages);
  CheckExactInvariant(io, "contended async fetch");
}

TEST(AsyncDiskTest, ColdResetCancelsPendingPrefetches) {
  DiskManager disk(DiskManagerOptions{kPageSize, /*io_threads=*/1,
                                      /*queue_depth=*/256});
  const PageNo kPages = 64;
  SegmentId seg = FillSegment(&disk, kPages);
  disk.set_read_latency_us(1000);  // ~64 ms if the backlog were slept

  BufferPool pool(&disk, /*capacity_pages=*/128,
                  BufferPoolOptions{/*num_shards=*/2,
                                    /*serialize_miss_io=*/false,
                                    /*async_io=*/true});
  std::vector<PageId> pids;
  for (PageNo p = 0; p < kPages; ++p) pids.push_back(PageId{seg, p});
  ASSERT_OK(pool.PrefetchBatch(pids));
  ASSERT_OK(pool.ColdReset());  // cancels the queue instead of draining it

  EXPECT_EQ(pool.cached_pages(), 0u);
  EXPECT_EQ(disk.pending_submissions(), 0u);
  // Cancelled reads charged nothing: at most the one or two requests a
  // worker had already claimed count as prefetch reads.
  EXPECT_LT(static_cast<int64_t>(disk.io_stats()->prefetch_reads),
            static_cast<int64_t>(kPages));
  // The pool still works after the cancellation.
  disk.set_read_latency_us(0);
  auto guard = pool.Fetch(PageId{seg, 5});
  ASSERT_OK(guard.status());
  EXPECT_EQ(guard.value().data()[0], 5);
  CheckExactInvariant(*disk.io_stats(), "after cold-reset cancellation");
}

TEST(AsyncDiskTest, InvariantHoldsUnderEvictionChurn) {
  DiskManager disk(DiskManagerOptions{kPageSize, /*io_threads=*/2,
                                      /*queue_depth=*/64});
  const PageNo kPages = 128;
  SegmentId seg = FillSegment(&disk, kPages);

  // Capacity far below the segment: constant eviction, and PrefetchBatch
  // sees rejections when a shard has no evictable frame.
  BufferPool pool(&disk, /*capacity_pages=*/16,
                  BufferPoolOptions{/*num_shards=*/2,
                                    /*serialize_miss_io=*/false,
                                    /*async_io=*/true});
  for (int pass = 0; pass < 2; ++pass) {
    for (PageNo p = 0; p < kPages; p += 8) {
      std::vector<PageId> window;
      for (PageNo q = p; q < std::min<PageNo>(p + 8, kPages); ++q) {
        window.push_back(PageId{seg, q});
      }
      ASSERT_OK(pool.PrefetchBatch(window));
      for (const PageId& pid : window) {
        auto guard = pool.Fetch(pid);
        ASSERT_OK(guard.status());
        ASSERT_EQ(guard.value().data()[0],
                  static_cast<char>(pid.page_no));
      }
    }
  }
  disk.DrainSubmissions();
  CheckExactInvariant(*disk.io_stats(), "eviction churn");
}

// ------------------------------------------------- adaptive controller

TEST(AdaptiveReadaheadTest, ControlLawWidensAndNarrows) {
  IoStats io;
  AdaptiveReadaheadConfig cfg;
  cfg.initial_window = 16;
  cfg.min_window = 4;
  cfg.max_window = 64;
  AdaptiveReadaheadController ctl(cfg, &io, /*window_gauge=*/nullptr);
  EXPECT_EQ(ctl.window(), 16);

  // Everything staged is consumed: double, up to the cap.
  io.prefetch_reads += 16;
  io.prefetch_hits += 16;
  ctl.Update();
  EXPECT_EQ(ctl.window(), 32);
  io.prefetch_reads += 32;
  io.prefetch_hits += 32;
  ctl.Update();
  EXPECT_EQ(ctl.window(), 64);
  io.prefetch_reads += 64;
  io.prefetch_hits += 64;
  ctl.Update();
  EXPECT_EQ(ctl.window(), 64) << "capped at max_window";

  // A full window of speculative reads mostly unconsumed: halve.
  io.prefetch_reads += 64;
  ctl.Update();
  EXPECT_EQ(ctl.window(), 32);

  // Backpressure (rejected submissions) narrows regardless of hits.
  ++io.prefetch_rejected;
  io.prefetch_reads += 32;
  io.prefetch_hits += 32;
  ctl.Update();
  EXPECT_EQ(ctl.window(), 16);
  ++io.prefetch_rejected;
  ctl.Update();
  EXPECT_EQ(ctl.window(), 8);
  ++io.prefetch_rejected;
  ctl.Update();
  EXPECT_EQ(ctl.window(), 4) << "floored at min_window";
  ++io.prefetch_rejected;
  ctl.Update();
  EXPECT_EQ(ctl.window(), 4);

  EXPECT_GE(ctl.widenings(), 2);
  EXPECT_GE(ctl.narrowings(), 4);

  // No new signal: the window is left alone.
  ctl.Update();
  EXPECT_EQ(ctl.window(), 4);
}

TEST(AdaptiveReadaheadTest, DisabledControllerHoldsWindow) {
  IoStats io;
  AdaptiveReadaheadConfig cfg;
  cfg.initial_window = 32;
  cfg.adaptive = false;
  AdaptiveReadaheadController ctl(cfg, &io, nullptr);
  io.prefetch_reads += 1000;
  ++io.prefetch_rejected;
  ctl.Update();
  EXPECT_EQ(ctl.window(), 32);
  EXPECT_EQ(ctl.widenings(), 0);
  EXPECT_EQ(ctl.narrowings(), 0);
}

// --------------------------------------- feedback determinism (oracle)

class AsyncScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    opts.buffer_pool_pages = 512;
    opts.async_io = true;
    opts.io_threads = 4;
    db_ = std::make_unique<Database>(opts);
    SyntheticOptions sopts;
    sopts.num_rows = 20'000;
    sopts.seed = 7;
    auto table = BuildSyntheticTable(db_.get(), "T", sopts);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    t_ = *table;
    db_->disk()->set_read_latency_us(20);  // make the overlap real
  }

  static Predicate Pushed() {
    return Predicate({PredicateAtom::Int64(kC3, CmpOp::kLt, 4000),
                      PredicateAtom::Int64(kC5, CmpOp::kGe, 10'000)});
  }

  // Prefix-exact, full-conjunction, and genuinely sampled requests — the
  // sampled one is the sensitive case: a DPSample draw is a pure function
  // of (page, seed), so no readahead schedule may perturb it.
  std::unique_ptr<ScanMonitorBundle> MakeBundle() {
    auto bundle = std::make_unique<ScanMonitorBundle>(
        Pushed(), &t_->schema(), /*sample_fraction=*/0.2, /*seed=*/99);
    ScanExprRequest lead;
    lead.label = "T: C3<4000";
    lead.expr = Predicate({PredicateAtom::Int64(kC3, CmpOp::kLt, 4000)});
    EXPECT_OK(bundle->AddRequest(lead));
    ScanExprRequest sampled;
    sampled.label = "T: C4<2000";
    sampled.expr =
        Predicate({PredicateAtom::Int64(kC4, CmpOp::kLt, 2000)});
    EXPECT_OK(bundle->AddRequest(sampled));
    return bundle;
  }

  RunResult Run(Operator* op) {
    DPCF_CHECK_OK(db_->ColdCache());
    ExecContext ctx(db_->buffer_pool());
    auto result = ExecutePlan(op, &ctx);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::unique_ptr<Database> db_;
  Table* t_ = nullptr;
};

TEST_F(AsyncScanTest, FeedbackIdenticalAcrossThreadsAndWindows) {
  TableScanOp serial(t_, Pushed(), {kC1, kC5}, MakeBundle());
  RunResult oracle = Run(&serial);
  ASSERT_GT(oracle.output.size(), 0u);
  ASSERT_EQ(oracle.stats.monitors.size(), 2u);

  for (int threads : {1, 4}) {
    for (uint32_t window : {16u, 256u}) {
      for (bool adaptive : {false, true}) {
        ParallelTableScanOp parallel(
            t_, Pushed(), {kC1, kC5}, MakeBundle(),
            ParallelScanOptions{threads, 8, window, /*vectorized=*/true,
                                adaptive});
        RunResult run = Run(&parallel);
        const std::string what =
            "threads=" + std::to_string(threads) +
            " window=" + std::to_string(window) +
            " adaptive=" + std::to_string(adaptive);

        ASSERT_EQ(run.output.size(), oracle.output.size()) << what;
        for (size_t i = 0; i < oracle.output.size(); ++i) {
          ASSERT_TRUE(run.output[i] == oracle.output[i])
              << what << " tuple " << i;
        }
        ASSERT_EQ(run.stats.monitors.size(),
                  oracle.stats.monitors.size());
        for (size_t i = 0; i < oracle.stats.monitors.size(); ++i) {
          const MonitorRecord& s = oracle.stats.monitors[i];
          const MonitorRecord& p = run.stats.monitors[i];
          EXPECT_EQ(p.label, s.label) << what;
          EXPECT_EQ(p.actual_dpc, s.actual_dpc) << what << " " << s.label;
          EXPECT_EQ(p.actual_cardinality, s.actual_cardinality)
              << what << " " << s.label;
          EXPECT_EQ(p.exact, s.exact) << what;
        }
        EXPECT_EQ(run.stats.io.logical_reads,
                  oracle.stats.io.logical_reads)
            << what;
        CheckExactInvariant(run.stats.io, what.c_str());
      }
    }
  }
}

}  // namespace
}  // namespace dpcf
