// Negative-compilation fixture: reading a GUARDED_BY member without the
// latch. Under clang -Werror=thread-safety this must NOT compile; the
// CMake harness asserts the failure (see CMakeLists.txt here).

#include "common/thread_annotations.h"

namespace dpcf {

class Counter {
 public:
  // BUG UNDER TEST: touches value_ without holding mu_.
  int Read() const { return value_; }

  int ReadLocked() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

int Use() {
  Counter c;
  return c.Read();
}

}  // namespace dpcf
