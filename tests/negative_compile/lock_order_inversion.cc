// Negative-compilation fixture: calling into the buffer pool while
// holding the disk latch. The machine-checked lock order is pool before
// disk (BufferPool::mu_ is ACQUIRED_BEFORE DiskManager::mu_, and every
// pool entry point EXCLUDES the disk latch), so this call site must NOT
// compile under clang -Werror=thread-safety.
//
// The latch is taken through pool->disk_latch() so the held capability is
// spelled exactly as Fetch's EXCLUDES clause spells it (pool->disk_->mu_)
// — TSA matches expressions, not runtime aliases.

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace dpcf {

void Inverted(BufferPool* pool) {
  MutexLock hold_disk(pool->disk_latch());
  // BUG UNDER TEST: Fetch() EXCLUDES the disk latch we are holding.
  auto guard = pool->Fetch(PageId{0});
  (void)guard;
}

}  // namespace dpcf
