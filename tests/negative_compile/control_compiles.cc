// Control fixture: correct latching in the same shapes as the two
// negative cases. This file MUST compile cleanly under
// clang -Werror=thread-safety — it proves the negative cases fail because
// of the seeded bugs, not because the harness flags are broken.

#include "common/thread_annotations.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace dpcf {

class Counter {
 public:
  int ReadLocked() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

int UseCounter() {
  Counter c;
  return c.ReadLocked();
}

void UsePool(BufferPool* pool) {
  // Correct order: no latch held when entering the pool.
  auto guard = pool->Fetch(PageId{0});
  (void)guard;
}

}  // namespace dpcf
