// SQL front-end tests: tokenizer, parser, binder.

#include <gtest/gtest.h>

#include "sql/binder.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

// --------------------------------------------------------------- Tokenizer

TEST(TokenizerTest, BasicQuery) {
  ASSERT_OK_AND_ASSIGN(auto tokens,
                       Tokenize("SELECT COUNT(*) FROM t WHERE a < 5"));
  ASSERT_EQ(tokens.size(), 12u);  // incl. kEnd
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsKeyword("COUNT"));
  EXPECT_TRUE(tokens[2].IsSymbol("("));
  EXPECT_TRUE(tokens[3].IsSymbol("*"));
  EXPECT_TRUE(tokens[4].IsSymbol(")"));
  EXPECT_TRUE(tokens[5].IsKeyword("FROM"));
  EXPECT_EQ(tokens[6].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[6].text, "t");
  EXPECT_TRUE(tokens[7].IsKeyword("WHERE"));
  EXPECT_TRUE(tokens[9].IsSymbol("<"));
  EXPECT_EQ(tokens[10].ival, 5);
  EXPECT_EQ(tokens[11].type, TokenType::kEnd);
}

TEST(TokenizerTest, KeywordsAreCaseInsensitive) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("select From wHeRe"));
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsKeyword("FROM"));
  EXPECT_TRUE(tokens[2].IsKeyword("WHERE"));
}

TEST(TokenizerTest, IdentifiersPreserveCase) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("MyTable my_col2"));
  EXPECT_EQ(tokens[0].text, "MyTable");
  EXPECT_EQ(tokens[1].text, "my_col2");
}

TEST(TokenizerTest, TwoCharOperatorsAndAliases) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("<= >= <> != < >"));
  EXPECT_EQ(tokens[0].text, "<=");
  EXPECT_EQ(tokens[1].text, ">=");
  EXPECT_EQ(tokens[2].text, "<>");
  EXPECT_EQ(tokens[3].text, "<>") << "!= normalizes to <>";
  EXPECT_EQ(tokens[4].text, "<");
  EXPECT_EQ(tokens[5].text, ">");
}

TEST(TokenizerTest, StringAndNegativeLiterals) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("'CA' -42"));
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "CA");
  EXPECT_EQ(tokens[1].type, TokenType::kInteger);
  EXPECT_EQ(tokens[1].ival, -42);
}

TEST(TokenizerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ; b").ok());
  EXPECT_FALSE(Tokenize("99999999999999999999999").ok());
}

// ------------------------------------------------------------------ Parser

TEST(ParserTest, CountStar) {
  ASSERT_OK_AND_ASSIGN(ParsedQuery q,
                       ParseSql("SELECT COUNT(*) FROM T WHERE C2 < 100"));
  EXPECT_TRUE(q.count);
  EXPECT_EQ(q.count_arg, "*");
  EXPECT_EQ(q.table0, "T");
  EXPECT_FALSE(q.has_join);
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].column, "C2");
  EXPECT_EQ(q.where[0].op, CmpOp::kLt);
  EXPECT_EQ(q.where[0].ival, 100);
}

TEST(ParserTest, CountColumnAndConjunction) {
  ASSERT_OK_AND_ASSIGN(
      ParsedQuery q,
      ParseSql("SELECT COUNT(padding) FROM T "
               "WHERE C2 >= 5 AND C3 <> 7 AND s = 'CA'"));
  EXPECT_EQ(q.count_arg, "padding");
  ASSERT_EQ(q.where.size(), 3u);
  EXPECT_EQ(q.where[0].op, CmpOp::kGe);
  EXPECT_EQ(q.where[1].op, CmpOp::kNe);
  EXPECT_TRUE(q.where[2].is_string);
  EXPECT_EQ(q.where[2].sval, "CA");
}

TEST(ParserTest, SelectColumnList) {
  ASSERT_OK_AND_ASSIGN(ParsedQuery q, ParseSql("SELECT a, t.b FROM t"));
  EXPECT_FALSE(q.count);
  ASSERT_EQ(q.select_cols.size(), 2u);
  EXPECT_EQ(q.select_cols[0].column, "a");
  EXPECT_EQ(q.select_cols[1].table, "t");
  EXPECT_EQ(q.select_cols[1].column, "b");
}

TEST(ParserTest, JoinWithQualifiedColumns) {
  ASSERT_OK_AND_ASSIGN(
      ParsedQuery q,
      ParseSql("SELECT COUNT(*) FROM T1 JOIN T ON T1.C2 = T.C2 "
               "WHERE T1.C1 < 500"));
  EXPECT_TRUE(q.has_join);
  EXPECT_EQ(q.table0, "T1");
  EXPECT_EQ(q.table1, "T");
  EXPECT_EQ(q.join_left.table, "T1");
  EXPECT_EQ(q.join_left.column, "C2");
  EXPECT_EQ(q.join_right.table, "T");
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].table, "T1");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("SELECT").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) T").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM t WHERE a <").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM t WHERE a 5").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM t extra").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(* FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM t JOIN").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM a JOIN b ON x = ").ok());
}

TEST(ParserTest, ErrorsCarryOffsets) {
  Status st = ParseSql("SELECT COUNT(*) FROM t WHERE a ! 5").status();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("offset"), std::string::npos);
}

// ------------------------------------------------------------------ Binder

class BinderTest : public dpcf::testing::SyntheticDbTest {};

TEST_F(BinderTest, BindsSingleTableQuery) {
  ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(*db_, "SELECT COUNT(padding) FROM T WHERE C2 < 100"));
  EXPECT_FALSE(q.is_join);
  EXPECT_EQ(q.single.table, t_);
  EXPECT_TRUE(q.single.count_star);
  EXPECT_EQ(q.single.count_col, kPadding);
  ASSERT_EQ(q.single.pred.size(), 1u);
  EXPECT_EQ(q.single.pred.atoms()[0].col(), kC2);
}

TEST_F(BinderTest, BindsProjectionQuery) {
  ASSERT_OK_AND_ASSIGN(BoundQuery q,
                       BindSql(*db_, "SELECT C1, C5 FROM T WHERE C1 <= 3"));
  EXPECT_FALSE(q.single.count_star);
  EXPECT_EQ(q.single.projection, (std::vector<int>{kC1, kC5}));
}

TEST_F(BinderTest, BindsJoinAndPartitionsPredicates) {
  SyntheticOptions s1;
  s1.num_rows = 1000;
  s1.seed = 99;
  s1.build_indexes = false;
  ASSERT_TRUE(BuildSyntheticTable(db_.get(), "T1", s1).ok());
  ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(*db_,
              "SELECT COUNT(T.padding) FROM T1 JOIN T ON T1.C3 = T.C3 "
              "WHERE T1.C1 < 50 AND T.C5 > 7"));
  ASSERT_TRUE(q.is_join);
  EXPECT_EQ(q.join.outer_table->name(), "T1");
  EXPECT_EQ(q.join.inner_table->name(), "T");
  EXPECT_EQ(q.join.outer_col, kC3);
  EXPECT_EQ(q.join.inner_col, kC3);
  EXPECT_EQ(q.join.outer_pred.size(), 1u);
  EXPECT_EQ(q.join.inner_pred.size(), 1u);
  EXPECT_EQ(q.join.inner_count_col, kPadding);
  EXPECT_EQ(q.join.outer_count_col, -1);
}

TEST_F(BinderTest, UnqualifiedColumnsResolveWhenUnambiguous) {
  ASSERT_OK_AND_ASSIGN(
      BoundQuery q, BindSql(*db_, "SELECT COUNT(*) FROM T WHERE C4 = 9"));
  EXPECT_EQ(q.single.pred.atoms()[0].col(), kC4);
}

TEST_F(BinderTest, AmbiguousColumnRejectedInJoin) {
  SyntheticOptions s1;
  s1.num_rows = 1000;
  s1.seed = 99;
  s1.build_indexes = false;
  ASSERT_TRUE(BuildSyntheticTable(db_.get(), "T1", s1).ok());
  Status st = BindSql(*db_,
                      "SELECT COUNT(*) FROM T1 JOIN T ON T1.C2 = T.C2 "
                      "WHERE C1 < 5")
                  .status();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("ambiguous"), std::string::npos);
}

TEST_F(BinderTest, TypeMismatchesRejected) {
  EXPECT_FALSE(
      BindSql(*db_, "SELECT COUNT(*) FROM T WHERE C1 = 'x'").ok());
  EXPECT_FALSE(
      BindSql(*db_, "SELECT COUNT(*) FROM T WHERE padding = 5").ok());
  EXPECT_FALSE(BindSql(*db_,
                       "SELECT COUNT(*) FROM T WHERE padding = "
                       "'waaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                       "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaytoolong'")
                   .ok());
}

TEST_F(BinderTest, UnknownNamesRejected) {
  EXPECT_EQ(BindSql(*db_, "SELECT COUNT(*) FROM Missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      BindSql(*db_, "SELECT COUNT(*) FROM T WHERE nope = 1").status().code(),
      StatusCode::kNotFound);
  EXPECT_EQ(BindSql(*db_, "SELECT COUNT(*) FROM T WHERE Bad.C1 = 1")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(BinderTest, JoinConditionMustSpanBothTables) {
  SyntheticOptions s1;
  s1.num_rows = 1000;
  s1.seed = 99;
  s1.build_indexes = false;
  ASSERT_TRUE(BuildSyntheticTable(db_.get(), "T1", s1).ok());
  EXPECT_FALSE(BindSql(*db_,
                       "SELECT COUNT(*) FROM T1 JOIN T ON T.C2 = T.C3")
                   .ok());
}

TEST_F(BinderTest, StringPredicateBindsWithColumnWidth) {
  ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(*db_, "SELECT COUNT(*) FROM T WHERE padding = 'pad'"));
  const PredicateAtom& atom = q.single.pred.atoms()[0];
  EXPECT_TRUE(atom.is_string());
  EXPECT_EQ(atom.string_operand().size(),
            t_->schema().column(kPadding).size);
}

}  // namespace
}  // namespace dpcf
