// End-to-end smoke test: the full paper pipeline on a small synthetic
// database — optimize, execute, monitor, feed back, re-optimize, speed up.

#include <gtest/gtest.h>

#include "core/feedback_driver.h"
#include "sql/binder.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

using dpcf::testing::SyntheticDbTest;

class SmokeTest : public SyntheticDbTest {};

TEST_F(SmokeTest, FeedbackLoopImprovesCorrelatedQuery) {
  StatisticsCatalog stats;
  ASSERT_OK(stats.BuildAll(db_->disk(), *t_));

  // C2 is fully correlated with the clustering; a 2% selectivity predicate
  // touches ~2% of pages, but Yao predicts ~80%+ — the optimizer picks a
  // Table Scan and feedback should flip it to an Index Seek.
  ASSERT_OK_AND_ASSIGN(
      BoundQuery bound,
      BindSql(*db_, "SELECT COUNT(padding) FROM T WHERE C2 < 400"));
  ASSERT_FALSE(bound.is_join);

  FeedbackRunOptions options;
  FeedbackDriver driver(db_.get(), &stats, options);
  ASSERT_OK_AND_ASSIGN(FeedbackOutcome outcome,
                       driver.RunSingleTable(bound.single));

  EXPECT_TRUE(outcome.plan_changed)
      << "before: " << outcome.plan_before
      << "\nafter: " << outcome.plan_after;
  EXPECT_NE(outcome.plan_before.find("TableScan"), std::string::npos);
  EXPECT_NE(outcome.plan_after.find("IndexSeek"), std::string::npos);
  EXPECT_GT(outcome.speedup, 0.5);
  // Monitoring a scan with prefix-exact counting plus 1% DPSample must be
  // cheap (paper: < 2%).
  EXPECT_LT(outcome.monitor_overhead, 0.05);

  // The monitored run observed the true page count for the C2 expression.
  bool found = false;
  for (const MonitorRecord& m : outcome.feedback) {
    if (m.label == "T|C2<400") {
      found = true;
      // 399 rows over ~81 rows/page, fully correlated: ~5-6 pages.
      EXPECT_NEAR(m.actual_dpc, 399.0 / t_->rows_per_page(), 3.0);
      EXPECT_GT(m.estimated_dpc, 10 * m.actual_dpc)
          << "Yao should grossly overestimate on correlated data";
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SmokeTest, UncorrelatedQueryKeepsPlan) {
  StatisticsCatalog stats;
  ASSERT_OK(stats.BuildAll(db_->disk(), *t_));
  ASSERT_OK_AND_ASSIGN(
      BoundQuery bound,
      BindSql(*db_, "SELECT COUNT(padding) FROM T WHERE C5 < 1000"));

  FeedbackDriver driver(db_.get(), &stats, {});
  ASSERT_OK_AND_ASSIGN(FeedbackOutcome outcome,
                       driver.RunSingleTable(bound.single));
  // C5 is a random permutation: Yao is accurate, the scan stays optimal
  // and feedback must not regress the plan.
  EXPECT_NEAR(outcome.speedup, 0.0, 0.05);
}

TEST_F(SmokeTest, QueryResultsAreCorrectAcrossPlans) {
  StatisticsCatalog stats;
  ASSERT_OK(stats.BuildAll(db_->disk(), *t_));
  OptimizerHints hints;
  Optimizer opt(db_.get(), &stats, &hints);

  ASSERT_OK_AND_ASSIGN(
      BoundQuery bound,
      BindSql(*db_, "SELECT COUNT(padding) FROM T WHERE C3 < 777"));
  ASSERT_OK_AND_ASSIGN(std::vector<AccessPathPlan> paths,
                       opt.EnumerateAccessPaths(bound.single));
  ASSERT_GE(paths.size(), 2u);

  // Every access path must produce the same exact count: 776.
  for (const AccessPathPlan& path : paths) {
    ASSERT_OK(db_->ColdCache());
    ExecContext ctx(db_->buffer_pool());
    PlanMonitorHooks hooks;
    ASSERT_OK_AND_ASSIGN(OperatorPtr root,
                         BuildSingleTableExec(path, bound.single, hooks));
    ASSERT_OK_AND_ASSIGN(RunResult result, ExecutePlan(root.get(), &ctx));
    ASSERT_EQ(result.output.size(), 1u) << path.Describe();
    EXPECT_EQ(result.output[0][0].AsInt64(), 776) << path.Describe();
  }
}

}  // namespace
}  // namespace dpcf
