// Edge-case and robustness tests for the execution engine: empty inputs,
// operator reuse, tiny buffer pools, determinism, and SQL-to-result
// end-to-end checks against brute force.

#include <gtest/gtest.h>

#include "core/feedback_driver.h"
#include "exec/executor.h"
#include "exec/index_ops.h"
#include "exec/join_ops.h"
#include "exec/scan_ops.h"
#include "sql/binder.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

using dpcf::testing::SyntheticDbTest;

class ExecEdgeTest : public SyntheticDbTest {};

TEST_F(ExecEdgeTest, EmptyTableScansCleanly) {
  Schema schema({Column::Int64("x")});
  auto empty = db_->CreateTable("empty", schema, TableOrganization::kHeap);
  ASSERT_TRUE(empty.ok());
  TableBuilder b(*empty);
  ASSERT_OK(b.Finish());
  TableScanOp scan(*empty, Predicate(), {0});
  ExecContext ctx(db_->buffer_pool());
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&scan, &ctx));
  EXPECT_TRUE(run.output.empty());
  EXPECT_EQ(run.stats.io.logical_reads, 0);
}

TEST_F(ExecEdgeTest, EmptyTableWithMonitorsReportsZeroDpc) {
  Schema schema({Column::Int64("x")});
  auto empty = db_->CreateTable("empty2", schema, TableOrganization::kHeap);
  ASSERT_TRUE(empty.ok());
  TableBuilder b(*empty);
  ASSERT_OK(b.Finish());
  Predicate pred({PredicateAtom::Int64(0, CmpOp::kLt, 5)});
  auto bundle = std::make_unique<ScanMonitorBundle>(
      pred, &(*empty)->schema(), 1.0, 1);
  ScanExprRequest req;
  req.label = "x";
  req.expr = pred;
  ASSERT_OK(bundle->AddRequest(req));
  TableScanOp scan(*empty, pred, {}, std::move(bundle));
  ExecContext ctx(db_->buffer_pool());
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&scan, &ctx));
  ASSERT_EQ(run.stats.monitors.size(), 1u);
  EXPECT_EQ(run.stats.monitors[0].actual_dpc, 0);
}

TEST_F(ExecEdgeTest, OperatorsAreReusableAfterClose) {
  Predicate pred({PredicateAtom::Int64(kC2, CmpOp::kLt, 50)});
  TableScanOp scan(t_, pred, {kC1});
  ExecContext ctx(db_->buffer_pool());
  ASSERT_OK_AND_ASSIGN(RunResult first, ExecutePlan(&scan, &ctx));
  ASSERT_OK_AND_ASSIGN(RunResult second, ExecutePlan(&scan, &ctx));
  EXPECT_EQ(first.output.size(), second.output.size());
  EXPECT_EQ(first.output.size(), 49u);
}

TEST_F(ExecEdgeTest, SeekWithEmptyRangeYieldsNothing) {
  auto source = std::make_unique<IndexSeekSource>(
      db_->GetIndex("T_c3"), BtreeKey::Min(500), BtreeKey::Max(400));
  FetchOp fetch(t_, std::move(source), Predicate(), {kC1});
  ExecContext ctx(db_->buffer_pool());
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&fetch, &ctx));
  EXPECT_TRUE(run.output.empty());
}

TEST_F(ExecEdgeTest, SeekBeyondDomainYieldsNothing) {
  auto source = std::make_unique<IndexSeekSource>(
      db_->GetIndex("T_c3"), BtreeKey::Min(10'000'000),
      BtreeKey::Max(20'000'000));
  FetchOp fetch(t_, std::move(source), Predicate(), {kC1});
  ExecContext ctx(db_->buffer_pool());
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&fetch, &ctx));
  EXPECT_TRUE(run.output.empty());
}

TEST_F(ExecEdgeTest, HashJoinWithEmptyBuildProducesNothing) {
  Predicate none({PredicateAtom::Int64(kC1, CmpOp::kLt, -1)});
  auto build = std::make_unique<TableScanOp>(t_, none,
                                             std::vector<int>{kC2});
  auto probe = std::make_unique<TableScanOp>(t_, Predicate(),
                                             std::vector<int>{kC2});
  HashJoinOp join(std::move(build), 0, std::move(probe), 0);
  ExecContext ctx(db_->buffer_pool());
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&join, &ctx));
  EXPECT_TRUE(run.output.empty());
}

TEST_F(ExecEdgeTest, InlJoinWithNoMatchesProducesNothing) {
  Schema schema({Column::Int64("k")});
  auto outer_t = db_->CreateTable("nomatch", schema,
                                  TableOrganization::kHeap);
  ASSERT_TRUE(outer_t.ok());
  TableBuilder b(*outer_t);
  ASSERT_OK(b.AddRow({Value::Int64(-100)}));  // no T.C3 equals -100
  ASSERT_OK(b.Finish());
  auto outer = std::make_unique<TableScanOp>(*outer_t, Predicate(),
                                             std::vector<int>{0});
  IndexNestedLoopsJoinOp join(std::move(outer), 0, t_,
                              db_->GetIndex("T_c3"), Predicate(), {});
  ExecContext ctx(db_->buffer_pool());
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&join, &ctx));
  EXPECT_TRUE(run.output.empty());
}

TEST_F(ExecEdgeTest, TinyBufferPoolStillProducesCorrectResults) {
  // A pool of 8 frames against a 250-page table: heavy eviction, same
  // answers, far more physical I/O.
  DatabaseOptions small;
  small.buffer_pool_pages = 8;
  Database db2(small);
  SyntheticOptions opts;
  opts.num_rows = 20'000;
  opts.seed = 7;
  auto t2 = BuildSyntheticTable(&db2, "T", opts);
  ASSERT_TRUE(t2.ok()) << t2.status().ToString();

  Predicate pred({PredicateAtom::Int64(kC5, CmpOp::kLt, 777)});
  auto source = std::make_unique<IndexSeekSource>(
      db2.GetIndex("T_c5"), BtreeKey::Min(INT64_MIN), BtreeKey::Max(776));
  FetchOp fetch(*t2, std::move(source), Predicate(), {kC1});
  ASSERT_OK(db2.ColdCache());
  ExecContext ctx(db2.buffer_pool());
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&fetch, &ctx));
  EXPECT_EQ(run.output.size(), 776u);
  EXPECT_GT(run.stats.io.physical_reads(), 700)
      << "scattered fetches thrash an 8-frame pool";
}

TEST_F(ExecEdgeTest, SimulatedTimeIsDeterministicAcrossRuns) {
  Predicate pred({PredicateAtom::Int64(kC4, CmpOp::kLt, 900)});
  auto run_once = [&]() {
    EXPECT_OK(db_->ColdCache());
    ExecContext ctx(db_->buffer_pool(), /*seed=*/77);
    auto bundle = std::make_unique<ScanMonitorBundle>(
        Predicate(), &t_->schema(), 0.1, 77);
    ScanExprRequest req;
    req.label = "x";
    req.expr = pred;
    (void)bundle->AddRequest(req);
    TableScanOp scan(t_, Predicate(), {}, std::move(bundle));
    auto result = ExecutePlan(&scan, &ctx);
    EXPECT_TRUE(result.ok());
    return std::make_pair(result->stats.simulated_ms,
                          result->stats.monitors[0].actual_dpc);
  };
  auto [t1, d1] = run_once();
  auto [t2, d2] = run_once();
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(d1, d2);
}

class SqlEndToEndTest : public SyntheticDbTest {
 protected:
  int64_t RunCount(const std::string& sql) {
    auto bound = BindSql(*db_, sql);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    StatisticsCatalog stats;
    EXPECT_OK(stats.BuildAll(db_->disk(), *t_));
    OptimizerHints hints;
    Optimizer opt(db_.get(), &stats, &hints);
    PlanMonitorHooks hooks;
    OperatorPtr root;
    if (bound->is_join) {
      auto plan = opt.OptimizeJoin(bound->join);
      EXPECT_TRUE(plan.ok());
      auto r = BuildJoinExec(*plan, bound->join, hooks);
      EXPECT_TRUE(r.ok());
      root = std::move(r).value();
    } else {
      auto plan = opt.OptimizeSingleTable(bound->single);
      EXPECT_TRUE(plan.ok());
      auto r = BuildSingleTableExec(*plan, bound->single, hooks);
      EXPECT_TRUE(r.ok());
      root = std::move(r).value();
    }
    ExecContext ctx(db_->buffer_pool());
    auto result = ExecutePlan(root.get(), &ctx);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->output.size(), 1u);
    return result->output[0][0].AsInt64();
  }
};

TEST_F(SqlEndToEndTest, CountsMatchPermutationArithmetic) {
  // Ci are permutations of 1..20000, so exact counts are closed-form.
  EXPECT_EQ(RunCount("SELECT COUNT(*) FROM T WHERE C2 < 1000"), 999);
  EXPECT_EQ(RunCount("SELECT COUNT(padding) FROM T WHERE C3 <= 1000"),
            1000);
  EXPECT_EQ(RunCount("SELECT COUNT(*) FROM T WHERE C4 > 19000"), 1000);
  EXPECT_EQ(RunCount("SELECT COUNT(*) FROM T WHERE C5 >= 19001"), 1000);
  EXPECT_EQ(RunCount("SELECT COUNT(*) FROM T WHERE C2 = 7777"), 1);
  EXPECT_EQ(RunCount("SELECT COUNT(*) FROM T WHERE C2 <> 7777"), 19'999);
  EXPECT_EQ(
      RunCount("SELECT COUNT(*) FROM T WHERE C1 >= 5000 AND C1 < 5100"),
      100);
  EXPECT_EQ(RunCount("SELECT COUNT(*) FROM T WHERE padding = 'pad'"),
            20'000);
  EXPECT_EQ(RunCount("SELECT COUNT(*) FROM T WHERE padding = 'nope'"), 0);
}

TEST_F(SqlEndToEndTest, SelfJoinOnPermutationColumn) {
  // T ⋈ T on C1 restricted to 100 rows: needs a second table reference;
  // join T with itself is unsupported (same name), so join with a copy.
  SyntheticOptions opts;
  opts.num_rows = 20'000;
  opts.seed = 1234;
  opts.build_indexes = false;
  ASSERT_TRUE(BuildSyntheticTable(db_.get(), "T1", opts).ok());
  ASSERT_OK(db_->CreateIndex("T1_c1", "T1", std::vector<int>{kC1}, true)
                .status());
  EXPECT_EQ(RunCount("SELECT COUNT(*) FROM T1 JOIN T ON T1.C3 = T.C3 "
                     "WHERE T1.C1 < 101"),
            100);
}

}  // namespace
}  // namespace dpcf
