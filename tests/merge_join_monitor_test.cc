// Merge-Join bitvector monitoring (paper Section IV, last paragraph):
//  * partial bitvector when both inputs stream in join-key order,
//  * prebuilt bitvector when the outer child is a blocking Sort,
//  * no filter when the inner child sorts (the inner scan would drain
//    before any outer key is hashed).

#include <set>

#include <gtest/gtest.h>

#include "core/monitor_manager.h"
#include "optimizer/optimizer.h"
#include "exec/executor.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

class MergeJoinMonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    opts.buffer_pool_pages = 1024;
    db_ = std::make_unique<Database>(opts);
    SyntheticOptions sopts;
    sopts.num_rows = 20'000;
    sopts.seed = 7;
    auto t = BuildSyntheticTable(db_.get(), "T", sopts);
    ASSERT_TRUE(t.ok());
    t_ = *t;
    SyntheticOptions s1 = sopts;
    s1.seed = 1234;
    s1.build_indexes = false;
    auto t1 = BuildSyntheticTable(db_.get(), "T1", s1);
    ASSERT_TRUE(t1.ok());
    t1_ = *t1;
    ASSERT_OK(
        db_->CreateIndex("T1_c1", "T1", std::vector<int>{kC1}, true)
            .status());
    ASSERT_OK(stats_.BuildAll(db_->disk(), *t_));
    ASSERT_OK(stats_.BuildAll(db_->disk(), *t1_));
  }

  // Exact DPC(T, join-pred) by brute force.
  double ExactJoinDpc(const JoinQuery& q) {
    std::set<int64_t> keys;
    const HeapFile* f1 = q.outer_table->file();
    for (PageNo p = 0; p < f1->page_count(); ++p) {
      const char* page = db_->disk()->RawPage(PageId{f1->segment(), p});
      for (uint16_t s = 0; s < HeapFile::PageRowCount(page); ++s) {
        RowView row(f1->RowInPage(page, s), &q.outer_table->schema());
        bool pass = true;
        for (const PredicateAtom& a : q.outer_pred.atoms()) {
          pass = pass && a.Eval(row);
        }
        if (pass) {
          keys.insert(row.GetInt64(static_cast<size_t>(q.outer_col)));
        }
      }
    }
    std::set<PageNo> pages;
    const HeapFile* f = q.inner_table->file();
    for (PageNo p = 0; p < f->page_count(); ++p) {
      const char* page = db_->disk()->RawPage(PageId{f->segment(), p});
      for (uint16_t s = 0; s < HeapFile::PageRowCount(page); ++s) {
        RowView row(f->RowInPage(page, s), &q.inner_table->schema());
        if (keys.count(
                row.GetInt64(static_cast<size_t>(q.inner_col))) != 0) {
          pages.insert(p);
        }
      }
    }
    return static_cast<double>(pages.size());
  }

  // Finds (or builds) the MergeJoin plan for q and runs it monitored with
  // full-page sampling; returns (rows, measured join DPC or -1).
  std::pair<int64_t, double> RunMergeMonitored(const JoinQuery& q) {
    OptimizerHints hints;
    Optimizer opt(db_.get(), &stats_, &hints);
    auto plans = opt.EnumerateJoinPlans(q);
    EXPECT_TRUE(plans.ok());
    const JoinPlan* merge = nullptr;
    for (const auto& p : *plans) {
      if (p.method == JoinMethod::kMergeJoin) merge = &p;
    }
    EXPECT_NE(merge, nullptr);

    MonitorOptions mopts;
    mopts.scan_sample_fraction = 1.0;  // exact page counting
    mopts.min_sampled_pages = 0;
    MonitorManager mm(db_.get(), mopts);
    EXPECT_OK(db_->ColdCache());
    ExecContext ctx(db_->buffer_pool());
    auto ih = mm.ForJoin(*merge, q, &ctx);
    EXPECT_TRUE(ih.ok());
    auto root = BuildJoinExec(*merge, q, ih->hooks);
    EXPECT_TRUE(root.ok());
    auto result = ExecutePlan(root->get(), &ctx);
    EXPECT_TRUE(result.ok()) << result.status().ToString();

    double dpc = -1;
    std::string join_label =
        JoinPredKey(*q.outer_table, q.outer_col, *q.inner_table,
                    q.inner_col);
    for (const MonitorRecord& m : result->stats.monitors) {
      if (m.label == join_label) dpc = m.actual_dpc;
    }
    return {result->output.empty() ? -1
                                   : result->output[0][0].AsInt64(),
            dpc};
  }

  std::unique_ptr<Database> db_;
  Table* t_ = nullptr;
  Table* t1_ = nullptr;
  StatisticsCatalog stats_;
};

TEST_F(MergeJoinMonitorTest, PartialFilterCountsExactlyWhenBothClustered) {
  // Join on the clustering keys: no sorts => partial bitvector mode.
  JoinQuery q;
  q.outer_table = t1_;
  q.outer_pred.Add(PredicateAtom::Int64(kC1, CmpOp::kLt, 1001));
  q.outer_col = kC1;
  q.inner_table = t_;
  q.inner_col = kC1;
  q.count_star = true;
  q.inner_count_col = kPadding;

  auto [rows, dpc] = RunMergeMonitored(q);
  EXPECT_EQ(rows, 1000);
  ASSERT_GE(dpc, 0) << "partial-filter monitoring must be active";
  // Matching inner rows are the first 1000 of T: ceil(1000/81) = 13 pages.
  EXPECT_NEAR(dpc, ExactJoinDpc(q), 1.0);
}

TEST_F(MergeJoinMonitorTest, PrebuiltFilterWhenOuterSorts) {
  // Outer joins on C5 (needs a Sort), inner streams on its clustering
  // key C1: sort_outer && !sort_inner => prebuilt bitvector.
  JoinQuery q;
  q.outer_table = t1_;
  q.outer_pred.Add(PredicateAtom::Int64(kC1, CmpOp::kLt, 801));
  q.outer_col = kC5;
  q.inner_table = t_;
  q.inner_col = kC1;
  q.count_star = true;
  q.inner_count_col = kPadding;

  OptimizerHints hints;
  Optimizer opt(db_.get(), &stats_, &hints);
  auto plans = opt.EnumerateJoinPlans(q);
  ASSERT_TRUE(plans.ok());
  const JoinPlan* merge = nullptr;
  for (const auto& p : *plans) {
    if (p.method == JoinMethod::kMergeJoin) merge = &p;
  }
  ASSERT_NE(merge, nullptr);
  EXPECT_TRUE(merge->sort_outer);
  EXPECT_FALSE(merge->sort_inner);

  auto [rows, dpc] = RunMergeMonitored(q);
  EXPECT_EQ(rows, 800) << "800 outer C5 values, each matching one T.C1";
  ASSERT_GE(dpc, 0);
  EXPECT_NEAR(dpc, ExactJoinDpc(q), 0.05 * ExactJoinDpc(q) + 2);
}

TEST_F(MergeJoinMonitorTest, NoFilterWhenInnerSorts) {
  // Inner joins on C5 (inner Sort drains the scan eagerly): bitvector
  // monitoring is unavailable for merge join in this shape.
  JoinQuery q;
  q.outer_table = t1_;
  q.outer_pred.Add(PredicateAtom::Int64(kC1, CmpOp::kLt, 501));
  q.outer_col = kC1;
  q.inner_table = t_;
  q.inner_col = kC5;
  q.count_star = true;
  q.inner_count_col = kPadding;

  auto [rows, dpc] = RunMergeMonitored(q);
  EXPECT_EQ(rows, 500);
  EXPECT_EQ(dpc, -1) << "no join DPC record expected";
}

TEST_F(MergeJoinMonitorTest, PartialAndPrebuiltAgreeWithHashJoin) {
  // The same join monitored through the hash-join path must produce the
  // same DPC as the merge paths (all mechanisms measure the same truth).
  JoinQuery q;
  q.outer_table = t1_;
  q.outer_pred.Add(PredicateAtom::Int64(kC1, CmpOp::kLt, 2001));
  q.outer_col = kC1;
  q.inner_table = t_;
  q.inner_col = kC1;
  q.count_star = true;
  q.inner_count_col = kPadding;

  auto [merge_rows, merge_dpc] = RunMergeMonitored(q);

  OptimizerHints hints;
  Optimizer opt(db_.get(), &stats_, &hints);
  auto plans = opt.EnumerateJoinPlans(q);
  ASSERT_TRUE(plans.ok());
  const JoinPlan* hash = nullptr;
  for (const auto& p : *plans) {
    if (p.method == JoinMethod::kHashJoin) hash = &p;
  }
  ASSERT_NE(hash, nullptr);
  MonitorOptions mopts;
  mopts.scan_sample_fraction = 1.0;
  mopts.min_sampled_pages = 0;
  MonitorManager mm(db_.get(), mopts);
  ASSERT_OK(db_->ColdCache());
  ExecContext ctx(db_->buffer_pool());
  ASSERT_OK_AND_ASSIGN(InstrumentedHooks ih, mm.ForJoin(*hash, q, &ctx));
  ASSERT_OK_AND_ASSIGN(OperatorPtr root, BuildJoinExec(*hash, q, ih.hooks));
  ASSERT_OK_AND_ASSIGN(RunResult result, ExecutePlan(root.get(), &ctx));

  double hash_dpc = -1;
  for (const MonitorRecord& m : result.stats.monitors) {
    if (m.label == JoinPredKey(*t1_, kC1, *t_, kC1)) hash_dpc = m.actual_dpc;
  }
  EXPECT_EQ(result.output[0][0].AsInt64(), merge_rows);
  EXPECT_NEAR(hash_dpc, merge_dpc, 1.0);
}

}  // namespace
}  // namespace dpcf
