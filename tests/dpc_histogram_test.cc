// Self-tuning DPC histogram tests: density learning, clamping,
// overlap selection, and the end-to-end generalization property (feedback
// from one range improves the plan for a different range on the same
// column with no additional monitoring).

#include <gtest/gtest.h>

#include "core/dpc_histogram.h"
#include "core/feedback_driver.h"
#include "optimizer/yao.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

using dpcf::testing::SyntheticDbTest;

TEST(DpcHistogramTest, EmptyHistogramHasNoOpinion) {
  DpcHistogram h(1000, 50);
  EXPECT_FALSE(h.Estimate(0, 10, 100).has_value());
  EXPECT_FALSE(h.DensityFor(0, 10).has_value());
  EXPECT_EQ(h.size(), 0u);
}

TEST(DpcHistogramTest, LearnsDensityAndScales) {
  DpcHistogram h(1000, 50);
  // Observed: range [0, 999] held 1000 rows on 20 pages => fully
  // clustered (density 0.02 = 1/rows_per_page).
  h.Observe(0, 999, 20, 1000);
  auto est = h.Estimate(0, 1999, 2000);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(*est, 40, 1) << "2x the rows at the learned density";
  auto density = h.DensityFor(0, 500);
  ASSERT_TRUE(density.has_value());
  EXPECT_NEAR(*density, 0.02, 1e-9);
}

TEST(DpcHistogramTest, EstimateClampsToHardBounds) {
  DpcHistogram h(1000, 50);
  // Scattered observation: density 1 page per row.
  h.Observe(0, 999, 1000, 1000);
  // 100k expected rows would extrapolate to 100k pages; UB is min(rows,P).
  auto est = h.Estimate(0, 999, 100'000);
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(*est, 1000);
  // Clustered observation can't go below ceil(rows/m).
  DpcHistogram h2(1000, 50);
  h2.Observe(0, 999, 1, 10'000);  // absurd density from a tiny fact
  auto est2 = h2.Estimate(0, 999, 5000);
  ASSERT_TRUE(est2.has_value());
  EXPECT_GE(*est2, 100) << "LB = 5000/50";
}

TEST(DpcHistogramTest, PrefersBestOverlappingObservation) {
  DpcHistogram h(10'000, 50);
  h.Observe(0, 999, 20, 1000);        // clustered region
  h.Observe(5000, 5999, 1000, 1000);  // scattered region
  auto lo = h.DensityFor(100, 200);
  auto hi = h.DensityFor(5400, 5500);
  ASSERT_TRUE(lo.has_value());
  ASSERT_TRUE(hi.has_value());
  EXPECT_LT(*lo, *hi);
}

TEST(DpcHistogramTest, NoOverlapNoAnswer) {
  DpcHistogram h(1000, 50);
  h.Observe(0, 99, 2, 100);
  EXPECT_FALSE(h.Estimate(500, 600, 100).has_value());
}

TEST(DpcHistogramTest, IdenticalRangeReplacesAndEvictionKeepsFresh) {
  DpcHistogram h(1000, 50, /*max_observations=*/3);
  h.Observe(0, 9, 5, 10);
  h.Observe(0, 9, 7, 10);  // replace
  EXPECT_EQ(h.size(), 1u);
  EXPECT_NEAR(*h.DensityFor(0, 9), 0.7, 1e-9);
  h.Observe(10, 19, 5, 10);
  h.Observe(20, 29, 5, 10);
  h.Observe(30, 39, 5, 10);  // evicts the stalest ([0,9])
  EXPECT_EQ(h.size(), 3u);
  EXPECT_FALSE(h.DensityFor(0, 9).has_value());
  EXPECT_TRUE(h.DensityFor(30, 39).has_value());
}

TEST(DpcHistogramTest, IgnoresDegenerateObservations) {
  DpcHistogram h(1000, 50);
  h.Observe(10, 5, 3, 10);  // hi < lo
  h.Observe(0, 9, 3, 0);    // no rows
  EXPECT_EQ(h.size(), 0u);
}

class DpcHistogramCatalogTest : public SyntheticDbTest {};

TEST_F(DpcHistogramCatalogTest, PerTableColumnSeparation) {
  DpcHistogramCatalog catalog;
  catalog.Observe(*t_, kC2, 0, 999, 13, 999);
  catalog.Observe(*t_, kC5, 0, 999, 990, 999);
  EXPECT_EQ(catalog.size(), 2u);
  auto c2 = catalog.Estimate(*t_, kC2, 0, 1999, 2000);
  auto c5 = catalog.Estimate(*t_, kC5, 0, 1999, 2000);
  ASSERT_TRUE(c2.has_value());
  ASSERT_TRUE(c5.has_value());
  // c5 is UB-clamped to the table's page count; c2 stays density-scaled.
  EXPECT_LT(*c2, *c5 / 5);
  EXPECT_FALSE(catalog.Estimate(*t_, kC3, 0, 10, 10).has_value());
  EXPECT_EQ(catalog.Get(*t_, kC3), nullptr);
}

class FeedbackGeneralizationTest : public SyntheticDbTest {
 protected:
  void SetUp() override {
    SyntheticDbTest::SetUp();
    ASSERT_OK(stats_.BuildAll(db_->disk(), *t_));
  }

  SingleTableQuery Query(int64_t bound) {
    SingleTableQuery q;
    q.table = t_;
    q.count_star = true;
    q.count_col = kPadding;
    q.pred.Add(PredicateAtom::Int64(kC2, CmpOp::kLt, bound));
    return q;
  }

  StatisticsCatalog stats_;
};

TEST_F(FeedbackGeneralizationTest, HistogramGeneralizesAcrossBounds) {
  FeedbackDriver driver(db_.get(), &stats_, {});
  // Teach the driver with one monitored run at bound 300...
  ASSERT_OK_AND_ASSIGN(FeedbackOutcome taught,
                       driver.RunSingleTable(Query(300)));
  EXPECT_TRUE(taught.plan_changed);
  EXPECT_GE(driver.dpc_histograms()->size(), 1u);

  // ...then a *different* bound must already be costed from the learned
  // density: the first optimization of the new query picks the seek.
  Optimizer opt(db_.get(), &stats_, driver.hints(), SimCostParams(),
                driver.dpc_histograms());
  SingleTableQuery q2 = Query(700);
  ASSERT_OK_AND_ASSIGN(AccessPathPlan plan, opt.OptimizeSingleTable(q2));
  EXPECT_EQ(plan.kind, AccessKind::kIndexSeek)
      << plan.Describe()
      << "\nno exact hint exists for C2<700; only the histogram can know";
  EXPECT_EQ(plan.dpc_source, "dpc-histogram");
  // And the density-derived estimate is close to the truth (~9 pages).
  EXPECT_NEAR(plan.est_dpc, 699.0 / t_->rows_per_page(), 4.0);
}

TEST_F(FeedbackGeneralizationTest, LearningCanBeDisabled) {
  FeedbackRunOptions options;
  options.learn_dpc_histograms = false;
  FeedbackDriver driver(db_.get(), &stats_, options);
  ASSERT_OK_AND_ASSIGN(FeedbackOutcome taught,
                       driver.RunSingleTable(Query(300)));
  EXPECT_EQ(driver.dpc_histograms()->size(), 0u);
  // Inspect the IndexSeek *candidate* (the best plan may legitimately be
  // the scan when the seek is costed with Yao's overestimate).
  Optimizer opt(db_.get(), &stats_, driver.hints());
  ASSERT_OK_AND_ASSIGN(auto paths, opt.EnumerateAccessPaths(Query(700)));
  bool seen_seek = false;
  for (const AccessPathPlan& p : paths) {
    if (p.kind == AccessKind::kIndexSeek) {
      seen_seek = true;
      EXPECT_EQ(p.dpc_source, "yao")
          << "no generalization without learning";
    }
  }
  EXPECT_TRUE(seen_seek);
}

TEST_F(FeedbackGeneralizationTest, ExactHintStillWinsOverHistogram) {
  FeedbackDriver driver(db_.get(), &stats_, {});
  ASSERT_OK_AND_ASSIGN(FeedbackOutcome taught,
                       driver.RunSingleTable(Query(300)));
  SingleTableQuery q2 = Query(700);
  driver.hints()->SetDpc(SelPredKey(*t_, q2.pred), 123.0);
  Optimizer opt(db_.get(), &stats_, driver.hints(), SimCostParams(),
                driver.dpc_histograms());
  ASSERT_OK_AND_ASSIGN(auto paths, opt.EnumerateAccessPaths(q2));
  bool seen_seek = false;
  for (const AccessPathPlan& p : paths) {
    if (p.kind == AccessKind::kIndexSeek) {
      seen_seek = true;
      EXPECT_EQ(p.dpc_source, "hint");
      EXPECT_EQ(p.est_dpc, 123.0);
    }
  }
  EXPECT_TRUE(seen_seek);
}

}  // namespace
}  // namespace dpcf
