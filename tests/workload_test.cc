// Workload generator tests: synthetic table structure, real-world dataset
// clustering spread, TPC-H-like shape, query generators.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/clustering_ratio.h"
#include "core/feedback_driver.h"
#include "optimizer/plan.h"
#include "tests/test_util.h"
#include "workload/query_gen.h"
#include "workload/realworld.h"
#include "workload/tpch_like.h"

namespace dpcf {
namespace {

using dpcf::testing::SyntheticDbTest;

class SyntheticWorkloadTest : public SyntheticDbTest {};

TEST_F(SyntheticWorkloadTest, SchemaAndShapeMatchThePaper) {
  EXPECT_EQ(t_->schema().num_columns(), 6u);
  EXPECT_EQ(t_->schema().row_size(), 100u) << "5×8 + 60-byte padding";
  EXPECT_EQ(t_->rows_per_page(), (kDefaultPageSize - 8) / 100);
  EXPECT_EQ(t_->row_count(), 20'000);
  EXPECT_EQ(t_->cluster_key_col(), kC1);
}

TEST_F(SyntheticWorkloadTest, ColumnsArePermutationsOfOneToN) {
  const HeapFile* file = t_->file();
  for (int col : {kC1, kC2, kC3, kC4, kC5}) {
    std::set<int64_t> seen;
    for (PageNo p = 0; p < file->page_count(); ++p) {
      const char* page = db_->disk()->RawPage(PageId{file->segment(), p});
      for (uint16_t s = 0; s < HeapFile::PageRowCount(page); ++s) {
        RowView row(file->RowInPage(page, s), &t_->schema());
        seen.insert(row.GetInt64(static_cast<size_t>(col)));
      }
    }
    EXPECT_EQ(seen.size(), 20'000u) << "col " << col;
    EXPECT_EQ(*seen.begin(), 1) << "col " << col;
    EXPECT_EQ(*seen.rbegin(), 20'000) << "col " << col;
  }
}

TEST_F(SyntheticWorkloadTest, CorrelationSpectrumIsOrdered) {
  // DPC for the same 1% selectivity must grow from C2 to C5 (at 1% the
  // C3/C4 shuffle windows are far from saturated, so the spectrum is
  // strictly ordered).
  std::map<int, int64_t> dpc;
  for (int col : {kC2, kC3, kC4, kC5}) {
    Predicate pred({PredicateAtom::Int64(col, CmpOp::kLt, 200)});
    ASSERT_OK_AND_ASSIGN(ClusteringRatioResult r,
                         ComputeClusteringRatio(db_->disk(), *t_, pred));
    dpc[col] = r.actual_pages;
  }
  EXPECT_LT(dpc[kC2], dpc[kC3]);
  EXPECT_LT(dpc[kC3], dpc[kC4]);
  EXPECT_LT(dpc[kC4], dpc[kC5]);
}

TEST_F(SyntheticWorkloadTest, IndexesExistAndAreConsistent) {
  for (const char* name : {"T_c1", "T_c2", "T_c3", "T_c4", "T_c5"}) {
    Index* ix = db_->GetIndex(name);
    ASSERT_NE(ix, nullptr) << name;
    EXPECT_EQ(ix->tree()->entry_count(), t_->row_count()) << name;
    EXPECT_OK(ix->tree()->CheckInvariants());
  }
  EXPECT_TRUE(db_->GetIndex("T_c1")->is_clustered_key());
  EXPECT_FALSE(db_->GetIndex("T_c3")->is_clustered_key());
}

TEST(QueryGenTest, SingleTableQueriesCoverColumnsAndSelectivities) {
  Database db;
  SyntheticOptions opts;
  opts.num_rows = 10'000;
  opts.build_indexes = false;
  auto t = BuildSyntheticTable(&db, "T", opts);
  ASSERT_TRUE(t.ok());
  auto queries =
      GenerateSyntheticSingleTableQueries(*t, 25, 0.01, 0.10, 99);
  ASSERT_EQ(queries.size(), 100u);
  std::map<int, int> per_col;
  for (const auto& g : queries) {
    ++per_col[g.column];
    EXPECT_GE(g.target_selectivity, 0.01);
    EXPECT_LE(g.target_selectivity, 0.10);
    EXPECT_EQ(g.query.pred.size(), 1u);
    EXPECT_EQ(g.query.count_col, kPadding);
    EXPECT_NE(g.description.find("COUNT(padding)"), std::string::npos);
  }
  EXPECT_EQ(per_col.size(), 4u);
  for (const auto& [col, n] : per_col) EXPECT_EQ(n, 25);
}

TEST(QueryGenTest, JoinQueriesCycleColumns) {
  Database db;
  SyntheticOptions opts;
  opts.num_rows = 10'000;
  opts.build_indexes = false;
  auto t = BuildSyntheticTable(&db, "T", opts);
  auto t1 = BuildSyntheticTable(&db, "T1", opts);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t1.ok());
  auto queries = GenerateSyntheticJoinQueries(*t, *t1, 40, 0.005, 0.07, 7);
  ASSERT_EQ(queries.size(), 40u);
  std::set<int> cols;
  for (const auto& g : queries) {
    cols.insert(g.column);
    EXPECT_EQ(g.query.outer_table, *t1);
    EXPECT_EQ(g.query.inner_table, *t);
    EXPECT_EQ(g.query.outer_col, g.query.inner_col);
    EXPECT_EQ(g.query.outer_pred.size(), 1u);
  }
  EXPECT_EQ(cols.size(), 4u);
}

TEST(QueryGenTest, MultiPredicateQueriesStaySargableAndNonEmpty) {
  Database db;
  SyntheticOptions opts;
  opts.num_rows = 10'000;
  opts.build_indexes = false;
  auto t = BuildSyntheticTable(&db, "T", opts);
  ASSERT_TRUE(t.ok());
  for (int atoms = 1; atoms <= 8; ++atoms) {
    SingleTableQuery q = GenerateMultiPredicateQuery(*t, atoms, 0.5, 3);
    EXPECT_EQ(q.pred.size(), static_cast<size_t>(atoms));
    // Every atom must be index-sargable (a range on some Ci).
    std::set<int> touched;
    for (const PredicateAtom& a : q.pred.atoms()) {
      auto range = ExtractColumnRange(q.pred, a.col());
      ASSERT_TRUE(range.has_value());
      touched.insert(a.col());
    }
    // The conjunction must keep matching rows (bands never empty).
    EXPECT_GT(ExactCardinality(db.disk(), **t, q.pred), 0) << atoms;
    EXPECT_LE(touched.size(), 4u);
  }
}

TEST(QueryGenTest, RealWorldQueriesRespectSelectivityCap) {
  Database db;
  RealWorldOptions opts;
  opts.scale = 0.1;
  opts.build_indexes = false;
  auto datasets = BuildRealWorldDatabases(&db, opts);
  ASSERT_TRUE(datasets.ok());
  for (const DatasetInfo& info : *datasets) {
    auto queries = GenerateRealWorldQueries(db.disk(), info.table,
                                            info.predicate_cols, 4, 0.10,
                                            55);
    EXPECT_FALSE(queries.empty()) << info.name;
    for (const auto& g : queries) {
      EXPECT_LE(g.target_selectivity, 0.10) << g.description;
      EXPECT_GT(g.target_selectivity, 0.0);
      // Verify the recorded selectivity against a raw count.
      int64_t rows = ExactCardinality(db.disk(), *info.table, g.query.pred);
      EXPECT_NEAR(static_cast<double>(rows) / info.table->row_count(),
                  g.target_selectivity, 1e-9);
    }
  }
}

TEST(RealWorldTest, DatasetsSpanTheClusteringSpectrum) {
  Database db;
  RealWorldOptions opts;
  opts.scale = 0.25;
  opts.build_indexes = false;
  auto datasets = BuildRealWorldDatabases(&db, opts);
  ASSERT_TRUE(datasets.ok());
  ASSERT_EQ(datasets->size(), 4u);
  double min_cr = 1.0, max_cr = 0.0;
  for (const DatasetInfo& info : *datasets) {
    auto queries = GenerateRealWorldQueries(db.disk(), info.table,
                                            info.predicate_cols, 3, 0.10,
                                            77);
    for (const auto& g : queries) {
      ASSERT_OK_AND_ASSIGN(
          ClusteringRatioResult r,
          ComputeClusteringRatio(db.disk(), *info.table, g.query.pred));
      if (r.upper_bound > r.lower_bound) {
        min_cr = std::min(min_cr, r.ratio);
        max_cr = std::max(max_cr, r.ratio);
      }
    }
  }
  EXPECT_LT(min_cr, 0.3) << "some predicates must be well clustered";
  EXPECT_GT(max_cr, 0.7) << "some predicates must be scattered";
}

TEST(RealWorldTest, RowsPerPageShapesFollowTableOne) {
  Database db;
  RealWorldOptions opts;
  opts.scale = 0.05;
  opts.build_indexes = false;
  auto datasets = BuildRealWorldDatabases(&db, opts);
  ASSERT_TRUE(datasets.ok());
  std::map<std::string, uint32_t> rpp;
  for (const DatasetInfo& info : *datasets) {
    rpp[info.name] = info.table->rows_per_page();
  }
  // Table I shape: products is widest (9/page), book retailer ~27,
  // yellow pages ~39, voter ~46.
  EXPECT_LT(rpp["products"], rpp["book_retailer"]);
  EXPECT_LT(rpp["book_retailer"], rpp["yellow_pages"]);
  EXPECT_LT(rpp["yellow_pages"], rpp["voter"]);
}

TEST(TpchLikeTest, DatesFollowOrderKeys) {
  Database db;
  TpchLikeOptions opts;
  opts.lineitem_rows = 20'000;
  opts.build_indexes = false;
  auto tables = BuildTpchLike(&db, opts);
  ASSERT_TRUE(tables.ok());
  Table* li = tables->lineitem;
  EXPECT_EQ(li->row_count(), 20'000);
  EXPECT_GT(tables->orders->row_count(), 20'000 / 8);

  // shipdate must be strongly correlated with the clustering order:
  // clustering ratio of a shipdate range predicate is low.
  Predicate pred({PredicateAtom::Int64(kLShipDate, CmpOp::kLt, 150)});
  ASSERT_OK_AND_ASSIGN(ClusteringRatioResult r,
                       ComputeClusteringRatio(db.disk(), *li, pred));
  ASSERT_GT(r.qualifying_rows, 100);
  EXPECT_LT(r.ratio, 0.2);
}

TEST(TpchLikeTest, SuppKeyIsSkewed) {
  Database db;
  TpchLikeOptions opts;
  opts.lineitem_rows = 20'000;
  opts.build_indexes = false;
  auto tables = BuildTpchLike(&db, opts);
  ASSERT_TRUE(tables.ok());
  std::map<int64_t, int64_t> freq;
  const HeapFile* file = tables->lineitem->file();
  for (PageNo p = 0; p < file->page_count(); ++p) {
    const char* page = db.disk()->RawPage(PageId{file->segment(), p});
    for (uint16_t s = 0; s < HeapFile::PageRowCount(page); ++s) {
      RowView row(file->RowInPage(page, s), &tables->lineitem->schema());
      ++freq[row.GetInt64(kLSuppKey)];
    }
  }
  int64_t max_freq = 0, total = 0;
  for (auto& [v, c] : freq) {
    max_freq = std::max(max_freq, c);
    total += c;
  }
  EXPECT_GT(max_freq, total / 50) << "Z=1 head value should be heavy";
}

TEST(TpchLikeTest, IndexesBuiltWhenRequested) {
  Database db;
  TpchLikeOptions opts;
  opts.lineitem_rows = 5'000;
  auto tables = BuildTpchLike(&db, opts);
  ASSERT_TRUE(tables.ok());
  for (const char* name :
       {"lineitem_shipdate", "lineitem_commitdate", "lineitem_receiptdate",
        "lineitem_partkey", "lineitem_suppkey", "lineitem_orderkey"}) {
    ASSERT_NE(db.GetIndex(name), nullptr) << name;
    EXPECT_OK(db.GetIndex(name)->tree()->CheckInvariants());
  }
}

}  // namespace
}  // namespace dpcf
