#!/usr/bin/env python3
"""Self-test for tools/lint/dpcf_lint.py, run as a ctest case.

Each rule gets a violating fixture (must produce findings with the right
rule id) and a clean fixture (must produce none); a final case checks that
NOLINT / NOLINTNEXTLINE actually suppress. Fixtures live under fixtures/
in a layout that mirrors the repo (src/, src/core/) and are linted with
--rel-root so the path-scoped rules fire; the tree-wide lint skips the
whole lint_selftest directory.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(REPO, "tools", "lint", "dpcf_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

# (rule id, fixture paths relative to fixtures/, expected finding count;
#  None = "at least one").
VIOLATING = [
    ("dpcf-mutex-annotation", ["src/bad_mutex.h"], 2),
    ("dpcf-mutex-annotation", ["src/bad_mutex_unguarded.h"], 1),
    ("dpcf-nondeterminism", ["src/core/bad_random.h"], 3),
    ("dpcf-discarded-status", ["src/bad_status.h", "src/bad_status.cc"], 2),
    ("dpcf-include-hygiene", ["src/bad_include.h"], 2),
    ("dpcf-naked-new", ["src/bad_new.h", "src/bad_new.cc"], 3),
    ("dpcf-metric-naming", ["src/bad_metric.cc"], 3),
    ("dpcf-eval-in-morsel", ["src/exec/bad_scan_loop.cc"], 2),
    ("dpcf-simd-intrinsics", ["src/exec/bad_intrinsics.cc"], 2),
]

CLEAN = [
    ("dpcf-mutex-annotation", ["src/good_mutex.h"]),
    ("dpcf-nondeterminism", ["src/core/good_random.h"]),
    ("dpcf-discarded-status", ["src/bad_status.h", "src/good_status.cc"]),
    ("dpcf-include-hygiene", ["src/good_include.h"]),
    ("dpcf-naked-new", ["src/good_new.h", "src/good_new.cc"]),
    ("dpcf-metric-naming", ["src/good_metric.cc"]),
    ("dpcf-eval-in-morsel", ["src/exec/good_scan_loop.cc"]),
    ("dpcf-simd-intrinsics", ["src/exec/simd_fixture.cc"]),
    # Violations present but suppressed -> clean.
    ("dpcf-naked-new", ["src/suppressed.h", "src/suppressed.cc"]),
]


def run_lint(rule, rel_paths):
    cmd = [sys.executable, LINT, "--rel-root", FIXTURES, "--rule", rule]
    cmd += [os.path.join(FIXTURES, p) for p in rel_paths]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc


def main():
    failures = []

    for rule, paths, expected in VIOLATING:
        proc = run_lint(rule, paths)
        findings = [ln for ln in proc.stdout.splitlines() if f"[{rule}]" in ln]
        if proc.returncode != 1:
            failures.append(f"{rule} on {paths}: expected exit 1, got "
                            f"{proc.returncode}\n{proc.stdout}{proc.stderr}")
        elif expected is not None and len(findings) != expected:
            failures.append(f"{rule} on {paths}: expected {expected} "
                            f"finding(s), got {len(findings)}:\n"
                            + "\n".join(findings))
        else:
            print(f"ok  (violating) {rule}: {len(findings)} finding(s)")

    for rule, paths in CLEAN:
        proc = run_lint(rule, paths)
        if proc.returncode != 0:
            failures.append(f"{rule} on {paths}: expected clean exit 0, got "
                            f"{proc.returncode}\n{proc.stdout}{proc.stderr}")
        else:
            print(f"ok  (clean)     {rule}: {paths[-1]}")

    # The tree-wide invocation must skip this fixture directory entirely.
    proc = subprocess.run(
        [sys.executable, LINT, os.path.join(REPO, "tests")],
        capture_output=True, text=True)
    if proc.returncode != 0:
        failures.append("tree-wide lint of tests/ must skip lint_selftest "
                        f"fixtures but exited {proc.returncode}:\n"
                        f"{proc.stdout}{proc.stderr}")
    else:
        print("ok  (discovery) tests/ walk skips lint_selftest fixtures")

    if failures:
        print("\n".join(["", "FAILURES:"] + failures), file=sys.stderr)
        return 1
    print(f"\nlint selftest: all {len(VIOLATING) + len(CLEAN) + 1} cases "
          "passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
