// Fixture: violates dpcf-mutex-annotation twice.
#pragma once

#include <mutex>

#include "common/thread_annotations.h"

namespace dpcf {

class BadMutex {
 public:
  void Touch();

 private:
  std::mutex raw_mu_;   // finding: raw std::mutex member
  Mutex orphan_mu_;     // finding: guards nothing in this file
  int value_ = 0;
};

}  // namespace dpcf
