// Fixture: clean under dpcf-nondeterminism — explicit seeds and a
// monotonic clock only.
#pragma once

#include <chrono>
#include <cstdint>
#include <random>

namespace dpcf {

inline int SeededDraw(uint64_t seed) {
  std::mt19937_64 gen(seed);  // explicit seed: deterministic
  return static_cast<int>(gen() & 0x7fffffff);
}

inline int64_t MonotonicTicks() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace dpcf
