// Fixture: violates dpcf-nondeterminism — ambient entropy and wall-clock
// time in src/core/ break replayable feedback runs.
#pragma once

#include <chrono>
#include <cstdlib>
#include <random>

namespace dpcf {

inline int AmbientDraw() {
  std::random_device rd;              // finding: nondeterministic seed
  return static_cast<int>(rd()) ^ rand();  // finding: rand()
}

inline long WallClockNow() {
  // finding: system_clock is wall time, not a monotonic stopwatch
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace dpcf
