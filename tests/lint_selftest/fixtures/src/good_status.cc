#include "bad_status.h"

namespace dpcf {

int Consume(Flusher* f) {
  // Assigned and cast-to-void uses are both fine.
  (void)f->FlushFixture();  // deliberate fire-and-forget, reason here
  auto n = f->CountFixture();
  return sizeof(n) > 0 ? 1 : 0;
}

}  // namespace dpcf
