// Fixture: header pair for good_new.cc.
#pragma once

#include <memory>

namespace dpcf {
std::unique_ptr<int> MakeOwned();
}  // namespace dpcf
