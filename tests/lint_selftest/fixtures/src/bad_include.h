// Fixture: violates dpcf-include-hygiene — no #pragma once, and a
// parent-relative include.
#include "../outside.h"

namespace dpcf {
inline int kBadInclude = 1;
}  // namespace dpcf
