// Fixture: clean for dpcf-eval-in-morsel — the batch kernel on the hot
// path, a marked oracle loop, and a per-row call outside any page loop.
#include "exec/good_scan_loop.h"

namespace dpcf {

void ScanPageBatch(const char* page, uint32_t rows_in_page) {
  block_.Reset(page, rows_in_page);
  uint32_t m = kernel_.EvalBatch(&block_, cpu, sel_.data(), leading_.data());
  if (bundle != nullptr) {
    bundle->ObserveBatch(&block_, leading_.data(), cpu, slots);
  }
  (void)m;
}

void ScanPageReference(const char* page, uint32_t rows_in_page) {
  // oracle: the row-at-a-time reference path the vectorized kernel is
  // verified against.
  for (uint32_t r = 0; r < rows_in_page; ++r) {
    RowView row(page, nullptr);
    uint32_t leading = pushed_.EvalLeading(row, cpu);
    if (bundle != nullptr) {
      bundle->OnRow(row, leading, cpu, slots);
    }
  }
}

bool EvalOneRow(const RowView& row) {
  // Not a page loop: a single-row helper may evaluate directly.
  return pushed_.EvalLeading(row, cpu) == pushed_.atoms().size();
}

}  // namespace dpcf
