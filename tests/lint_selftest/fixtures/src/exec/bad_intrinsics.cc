// Fixture: violates dpcf-simd-intrinsics — raw vector intrinsics in an
// exec TU that is not part of the src/exec/simd* layer.
#include "exec/bad_intrinsics.h"

namespace dpcf {

uint32_t HandRolledAvx2(const char* rows, int64_t operand) {
  __m256i v = _mm256_loadu_si256(rows);  // finding: raw x86 intrinsic
  return CountMatches(v, operand);
}

uint64_t HandRolledNeon(const char* rows) {
  int64x2_t v = vld1q_s64(rows);  // finding: raw NEON intrinsic
  return Reduce(v);
}

}  // namespace dpcf
