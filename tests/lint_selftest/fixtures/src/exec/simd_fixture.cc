// Fixture: clean for dpcf-simd-intrinsics — intrinsics are fine in files
// under the src/exec/simd* prefix (this mirrors simd_avx2.cc).
#include "exec/simd.h"

namespace dpcf {

uint32_t KernelTableAvx2(const char* rows, int64_t operand) {
  __m256i v = _mm256_loadu_si256(rows);  // allowed: inside the SIMD layer
  int64x2_t w = vld1q_s64(rows);         // allowed: inside the SIMD layer
  return Combine(v, w, operand);
}

}  // namespace dpcf
