// Fixture: violates dpcf-eval-in-morsel — per-row predicate evaluation and
// per-row monitor feed inside a page row loop, no oracle marker.
#include "exec/bad_scan_loop.h"

namespace dpcf {

void ScanPage(const char* page, uint32_t rows_in_page) {
  for (uint32_t r = 0; r < rows_in_page; ++r) {
    RowView row(page, nullptr);
    uint32_t leading = pushed_.EvalLeading(row, cpu);  // finding: per-row
    if (bundle != nullptr) {
      bundle->OnRow(row, leading, cpu, slots);  // finding: per-row feed
    }
  }
}

}  // namespace dpcf
