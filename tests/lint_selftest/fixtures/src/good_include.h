// Fixture: clean under dpcf-include-hygiene.
#pragma once

namespace dpcf {
inline int kGoodInclude = 1;
}  // namespace dpcf
