// Violating fixture for dpcf-metric-naming: a counter without `_total`, a
// camelCase histogram name, and a gauge without a unit suffix.

#include "obs/metrics_registry.h"

namespace dpcf {

void RegisterBadMetrics(MetricsRegistry* reg) {
  reg->GetCounter("buffer_pool_hits", "counter missing _total");
  reg->GetHistogram("missReadLatencyUs", "not snake_case", 1.0, 2.0, 16);
  reg->GetGauge("disk_read_latency", "gauge missing a unit suffix");
}

}  // namespace dpcf
