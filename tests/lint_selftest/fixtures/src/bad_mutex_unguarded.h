// Fixture: violates dpcf-mutex-annotation check 3 once — the latch shows
// up in lock-discipline annotations (EXCLUDES), so check 2 is satisfied,
// but no member is GUARDED_BY it, so TSA cannot catch an unlocked access
// to `value_`.
#pragma once

#include "common/thread_annotations.h"

namespace dpcf {

class BadMutexUnguarded {
 public:
  void Touch() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ++value_;
  }

 private:
  mutable Mutex mu_;  // finding: locked, but guards no annotated state
  int value_ = 0;
};

}  // namespace dpcf
