// Fixture: declares Status-returning methods for the discarded-status
// selftest (the rule harvests these names in its prepare pass).
#pragma once

namespace dpcf {

class Status;
template <typename T>
class Result;

class Flusher {
 public:
  Status FlushFixture();
  Result<int> CountFixture();
};

}  // namespace dpcf
