// Fixture: header pair for bad_new.cc (keeps include hygiene clean so the
// only findings are the naked new/delete ones).
#pragma once

namespace dpcf {
int* MakeLeak();
}  // namespace dpcf
