#include "bad_new.h"

namespace dpcf {

int* MakeLeak() {
  int* p = new int(42);  // finding: naked new
  delete p;              // finding: naked delete
  return new int(7);     // finding: naked new
}

}  // namespace dpcf
