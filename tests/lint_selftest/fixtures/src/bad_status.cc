#include "bad_status.h"

namespace dpcf {

void Drop(Flusher* f) {
  f->FlushFixture();   // finding: Status discarded
  f->CountFixture();   // finding: Result discarded
}

}  // namespace dpcf
