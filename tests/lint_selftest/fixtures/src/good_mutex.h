// Fixture: clean under dpcf-mutex-annotation — the latch is a dpcf::Mutex
// and something is GUARDED_BY it.
#pragma once

#include "common/thread_annotations.h"

namespace dpcf {

class GoodMutex {
 public:
  void Touch() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ++value_;
  }

 private:
  mutable Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace dpcf
