// Fixture: header pair for suppressed.cc.
#pragma once

namespace dpcf {
int* SuppressedNew();
}  // namespace dpcf
