// Clean fixture for dpcf-metric-naming: snake_case names with the right
// kind suffix, including a wrapped registration and a labeled child.

#include "obs/metrics_registry.h"

namespace dpcf {

void RegisterGoodMetrics(MetricsRegistry* reg) {
  reg->GetCounter("buffer_pool_hits_total", "Pool hits",
                  {{"shard", "0"}});
  reg->GetGauge("disk_read_latency_us", "Configured latency");
  reg->GetHistogram(
      "buffer_pool_miss_read_us", "Miss read wall time", 1.0, 2.0, 20);
}

}  // namespace dpcf
