#include "good_new.h"

#include <memory>

namespace dpcf {

std::unique_ptr<int> MakeOwned() {
  auto p = std::make_unique<int>(42);
  return p;  // ownership stays in unique_ptr; deleted types use = delete
}

}  // namespace dpcf
