#include "suppressed.h"

namespace dpcf {

// Exercises the suppression mechanism: both spellings must silence the
// naked-new rule, so this file lints clean despite two violations.
int* SuppressedNew() {
  int* a = new int(1);  // NOLINT(dpcf-naked-new) fixture: same-line form
  // NOLINTNEXTLINE(dpcf-naked-new)  fixture: next-line form
  delete a;
  return nullptr;
}

}  // namespace dpcf
