// dpcf-ast-nondeterminism clean fixture: the core draws randomness from
// the seeded generator (declared pure here, and the real one lives in the
// allowlisted src/common/random barrier) and emits a span timestamp via
// the observability sink (src/obs/report_sink.cc) — the barrier absorbs
// the clock read, so no finding.

struct Rng {
  explicit Rng(unsigned long long seed);
  unsigned long long Next();
};

namespace dpcf {

double NowMs();

unsigned long long DrawSeeded(Rng* rng) {
  return rng->Next();  // good: seeded plumbing
}

double ReportTimestamp() {
  return NowMs();  // good: callee is inside the src/obs barrier
}

}  // namespace dpcf
