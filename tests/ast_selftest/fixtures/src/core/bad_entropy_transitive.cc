// dpcf-ast-nondeterminism fixture: the entropy is two hops away — the
// core function calls a helper (src/support/entropy_helper.cc) whose body
// reads time(). No entropy token appears in this file, so only a
// call-graph walk can flag it; the finding's message carries the chain.

long NowSeconds();

namespace dpcf {

long StampRun() {
  return NowSeconds();  // bad: reaches time() via the helper
}

}  // namespace dpcf
