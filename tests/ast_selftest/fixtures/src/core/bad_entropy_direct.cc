// dpcf-ast-nondeterminism fixture: direct ambient-entropy reads inside
// src/core. Each line is a distinct entropy source.

extern "C" int rand();
extern "C" long time(void* t);

namespace dpcf {

int PickVictim(int n) {
  return rand() % n;  // bad: process-global PRNG
}

long long SampleSeed() {
  return static_cast<long long>(time(nullptr));  // bad: wall clock
}

}  // namespace dpcf
