// Companion fixture for bad_entropy_transitive.cc: a helper outside the
// deterministic core (src/support is neither src/core nor src/exec, and
// not an allowlisted barrier either) that reads the wall clock. Clean on
// its own — the finding belongs to the core-side caller.

extern "C" long time(void* t);

long NowSeconds() { return time(nullptr); }
