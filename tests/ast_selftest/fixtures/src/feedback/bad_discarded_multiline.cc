// dpcf-ast-discarded-status fixture: Status-returning calls discarded as
// bare statements. The call spanning a line break is exactly what the
// line-oriented regex rule cannot see; the member-call form exercises
// receiver-chain parsing. Self-contained: the selftest analyzes this file
// alone, and the clang engine (when present) parses it with no includes.

struct Status {
  static Status OK();
  bool ok() const;
};

struct FeedbackSink {
  Status Apply(int run_id);
  Status Flush();
};

void DriveFeedback(FeedbackSink* sink) {
  sink->Apply(
      42);  // bad: Status dropped, call spans two lines

  sink->Flush();  // bad: member-call Status dropped
}
