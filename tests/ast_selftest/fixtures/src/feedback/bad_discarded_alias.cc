// dpcf-ast-discarded-status fixture: the discarded type is only Status
// after resolving a `using` alias, and Result<T> counts the same as
// Status. A regex keyed on the literal word "Status" sees neither.

struct Status {
  bool ok() const;
};

template <typename T>
struct Result {
  T value;
};

using WriteAck = Status;  // resolved type is still Status

WriteAck WriteRuns(int n);
Result<int> CountPages(int segment);

void Tick() {
  WriteRuns(3);   // bad: alias-typed Status discarded
  CountPages(7);  // bad: Result<T> discarded
}
