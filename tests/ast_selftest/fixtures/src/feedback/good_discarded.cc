// dpcf-ast-discarded-status clean fixture: every Status is consumed, and
// the MergeFrom pair pins the resolved-type improvement — the name has a
// void-returning declaration too, so a bare call to the void one must NOT
// be flagged (the regex rule needs a hand-written NOLINT for this exact
// case in src/core/dpsample.cc).

struct Status {
  static Status OK();
  bool ok() const;
};

struct Pool {
  Status FlushAll();
  void Reset();
};

struct Counter {
  void MergeFrom(const Counter& o);
};

struct Bundle {
  Status MergeFrom(const Bundle& o);
};

Status Checked();

Status UseProperly(Pool* pool) {
  Status st = pool->FlushAll();  // good: assigned
  if (!st.ok()) return st;
  (void)Checked();  // good: explicit discard with a cast
  pool->Reset();    // good: resolved type is void
  return Status::OK();
}

void Fold(Counter* c, const Counter& o) {
  c->MergeFrom(o);  // good: this MergeFrom resolves to void
}
