// dpcf-ast-guard-consistency clean fixture: every access to the guarded
// field happens under the lock or inside a REQUIRES-annotated helper.

struct Mutex {};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

class LatchedCounter {
 public:
  void Add(int d) {
    MutexLock lock(&mu_);
    AddLocked(d);
  }

  int Get() {
    MutexLock lock(&mu_);
    return value_;
  }

 private:
  void AddLocked(int d) REQUIRES(mu_) { value_ += d; }

  Mutex mu_;
  int value_ GUARDED_BY(mu_);
};
