// dpcf-ast-charge-conservation fixture: CopyPageImage is the disk
// manager's page-image reader (it materializes a page into a caller
// frame), so a caller whose return path charges neither IoStats nor
// CpuStats hides a page access from the accounting.

struct PageId {
  unsigned segment = 0;
  unsigned page_no = 0;
};

enum class ReadClass { kDemand, kPrefetch };

struct Status {
  bool ok() const { return code == 0; }
  int code = 0;
};

Status CopyPageImage(PageId pid, char* dst, ReadClass cls);

namespace dpcf {

bool WarmFrame(PageId pid, char* dst) {
  Status st = CopyPageImage(pid, dst, ReadClass::kPrefetch);
  return st.ok();  // bad: the page read is never charged
}

}  // namespace dpcf
