// dpcf-ast-unnamed-raii clean fixture: the submission-ring guards held
// for their full intended scopes, as the disk manager uses them.

struct DiskManager {};

class SubmissionGuard {
 public:
  explicit SubmissionGuard(DiskManager* disk);
  void Add(int request);
};

class CompletionScope {
 public:
  explicit CompletionScope(DiskManager* disk);
};

void SubmitAndRetire(DiskManager* disk) {
  SubmissionGuard batch{disk};
  batch.Add(1);
  batch.Add(2);

  CompletionScope done{disk};
}
