// dpcf-ast-charge-conservation clean fixture: the CopyPageImage caller
// charges IoStats (here the readahead-backpressure counter) before any
// return, so the page access stays visible to the accounting.

struct PageId {
  unsigned segment = 0;
  unsigned page_no = 0;
};

enum class ReadClass { kDemand, kPrefetch };

struct Status {
  bool ok() const { return code == 0; }
  int code = 0;
};

Status CopyPageImage(PageId pid, char* dst, ReadClass cls);

namespace dpcf {

struct IoStats {
  long long prefetch_reads = 0;
  long long prefetch_rejected = 0;
};

bool WarmFrame(PageId pid, char* dst, IoStats* io) {
  Status st = CopyPageImage(pid, dst, ReadClass::kPrefetch);
  if (st.ok()) {
    ++io->prefetch_reads;
  } else {
    ++io->prefetch_rejected;
  }
  return st.ok();
}

}  // namespace dpcf
