// dpcf-ast-guard-consistency fixture: `size_` is GUARDED_BY(mu_) and
// Insert takes the lock, but UnsafeSize reads it bare — the mixed
// discipline the rule exists to catch (clang's TSA sees this too, but
// only on clang builds; this rule is the gcc shadow).

struct Mutex {};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

class FrameTable {
 public:
  void Insert(int frame) {
    MutexLock lock(&mu_);
    size_ = size_ + frame;  // guarded access
  }

  int UnsafeSize() {
    return size_;  // bad: no lock on mu_
  }

 private:
  Mutex mu_;
  int size_ GUARDED_BY(mu_);
};
