// Suppression fixture: real violations, silenced with NOLINT — both
// spellings must work, and the analyzer must report nothing here.

struct Mutex {};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

struct Status {
  bool ok() const;
};

Status Checkpoint();

void Suppressed(Mutex* mu) {
  MutexLock{mu};  // NOLINT(dpcf-ast-unnamed-raii) -- fixture: same-line form

  // NOLINTNEXTLINE(dpcf-ast-discarded-status)
  Checkpoint();
}
