// dpcf-ast-unnamed-raii fixture: the disk manager's submission-ring
// guards constructed as unnamed temporaries. A SubmissionGuard that dies
// at the semicolon batches nothing and wakes the workers for an empty
// ring; a CompletionScope that dies immediately retires the in-flight
// slot before the completion callback ran. Brace forms keep the
// statements unambiguous expressions for both engines.

struct DiskManager {};

class SubmissionGuard {
 public:
  explicit SubmissionGuard(DiskManager* disk);
};

class CompletionScope {
 public:
  explicit CompletionScope(DiskManager* disk);
};

void SubmitAndRetire(DiskManager* disk) {
  SubmissionGuard{disk};  // bad: ring latch dropped before any Add

  CompletionScope{disk};  // bad: in-flight slot retired immediately
}
