// dpcf-ast-unnamed-raii fixture: scope guards constructed as unnamed
// temporaries, destroyed at the semicolon. The forms are chosen to be
// unambiguous expressions (no most-vexing-parse) so the clang engine sees
// the same statements the token engine does.

struct Mutex {};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

struct TraceCollector {};

class ScopedSpan {
 public:
  ScopedSpan(TraceCollector* t, const char* category, const char* name);
};

void CriticalSection(Mutex* mu, TraceCollector* trace) {
  MutexLock{mu};  // bad: "guard" unlocks before the next statement

  ScopedSpan(trace, "exec", "scan");  // bad: span closes immediately
}
