// dpcf-ast-guard-consistency fixture: out-of-line definitions. The
// REQUIRES annotation lives on the *declaration* (as in the real tree),
// so CountLocked is clean; Peek has neither a MutexLock nor a REQUIRES
// and must be the one finding.

struct Mutex {};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

class SpanStore {
 public:
  void Add(int span);
  int CountLocked() REQUIRES(mu_);
  int Peek();

 private:
  Mutex mu_;
  int count_ GUARDED_BY(mu_);
};

void SpanStore::Add(int span) {
  MutexLock lock(&mu_);
  count_ += span;  // guarded access
}

int SpanStore::CountLocked() { return count_; }  // good: REQUIRES(mu_)

int SpanStore::Peek() { return count_; }  // bad: lock-free read
