// Companion fixture for good_entropy.cc: src/obs/ is an allowlisted
// reporting barrier — observability code may read clocks for span
// timestamps, and the call-graph walk must stop here instead of
// propagating entropy to its callers.

extern "C" long time(void* t);

namespace dpcf {

double NowMs() { return static_cast<double>(time(nullptr)) * 1000.0; }

}  // namespace dpcf
