// dpcf-ast-charge-conservation fixture: the happy path charges, but the
// early return bails out between the page read and the charge — exactly
// the kind of leak a whole-function regex cannot see.

unsigned PageRowCount(const char* page);

namespace dpcf {

struct CpuStats {
  long long rows_processed = 0;
};

long long SumPageRows(const char** pages, int n, CpuStats* cpu) {
  long long total = 0;
  for (int p = 0; p < n; ++p) {
    unsigned rows = PageRowCount(pages[p]);
    if (rows == 0) {
      return -1;  // bad: read happened, nothing charged yet
    }
    total += rows;
  }
  cpu->rows_processed += total;
  return total;
}

}  // namespace dpcf
