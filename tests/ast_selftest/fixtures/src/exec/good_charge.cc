// dpcf-ast-charge-conservation clean fixture: one function charges
// CpuStats directly before any return, the other charges through a
// helper — the rule's charging set is closed over the call graph.

unsigned PageRowCount(const char* page);

namespace dpcf {

struct CpuStats {
  long long monitor_row_ops = 0;
};

unsigned ObservePage(const char* page, CpuStats* cpu) {
  unsigned rows = PageRowCount(page);
  cpu->monitor_row_ops += rows;  // direct charge covers both returns
  if (rows == 0) {
    return 0;
  }
  return rows;
}

void ChargeRows(CpuStats* cpu, unsigned rows) {
  cpu->monitor_row_ops += rows;
}

unsigned ObserveViaHelper(const char* page, CpuStats* cpu) {
  unsigned rows = PageRowCount(page);
  ChargeRows(cpu, rows);  // charge via callee
  return rows;
}

}  // namespace dpcf
