// dpcf-ast-unnamed-raii fixture: brace-constructed and class-qualified
// unnamed temporary — `TraceCollector::QueryIdScope{qid};` tags nothing,
// because the scope ends at the semicolon.

struct TraceCollector {
  struct QueryIdScope {
    explicit QueryIdScope(unsigned long long qid);
  };
};

void TagSpans(unsigned long long qid) {
  TraceCollector::QueryIdScope{qid};  // bad: unnamed brace temporary
}
