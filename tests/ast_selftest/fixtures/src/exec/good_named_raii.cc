// dpcf-ast-unnamed-raii clean fixture: the same guards, named — they
// live to the end of their scope, which is the whole point.

struct Mutex {};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

struct TraceCollector {
  struct QueryIdScope {
    explicit QueryIdScope(unsigned long long qid);
  };
};

class ScopedSpan {
 public:
  ScopedSpan(TraceCollector* t, const char* category, const char* name);
};

int Workload(Mutex* mu, TraceCollector* trace, unsigned long long qid) {
  MutexLock lock(mu);
  ScopedSpan span(trace, "exec", "scan");
  TraceCollector::QueryIdScope qid_scope{qid};
  return 1;
}
