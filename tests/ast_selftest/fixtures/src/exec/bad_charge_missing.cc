// dpcf-ast-charge-conservation fixture: the function reads the page
// image (PageRowCount / RowInPage) and returns without ever charging
// IoStats or CpuStats — the page access is invisible to the accounting
// the estimation-error diagnosis trusts.

unsigned PageRowCount(const char* page);
const char* RowInPage(const char* page, unsigned slot);

namespace dpcf {

long long CountNonNullRows(const char* page) {
  long long n = 0;
  unsigned rows = PageRowCount(page);
  for (unsigned s = 0; s < rows; ++s) {
    if (RowInPage(page, s) != nullptr) ++n;
  }
  return n;  // bad: no charge on this path
}

}  // namespace dpcf
