#!/usr/bin/env python3
"""Self-test for tools/analysis/dpcf_ast.py, run as a ctest case.

Every rule gets violating fixtures (exact finding counts, right rule id)
and a clean fixture; further cases pin NOLINT suppression, --fix (naming
an unnamed RAII temporary must make the file clean), and tree-walk
discovery skipping this directory. Fixtures mirror the repo layout under
fixtures/ and are analyzed with --rel-root so the path-scoped rules
(nondeterminism, charge-conservation) fire.

All cases pin --engine python so they are deterministic on a bare
python3. When python bindings for libclang are importable — or required
via DPCF_AST_REQUIRE_CLANG=1, as the CI ast-analysis job does — the
rule-1/2 cases are repeated with --engine clang against a synthesized
compile_commands.json, proving both engines agree on the fixtures.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
AST = os.path.join(REPO, "tools", "analysis", "dpcf_ast.py")
FIXTURES = os.path.join(HERE, "fixtures")

# (rule id, fixture paths relative to fixtures/, expected finding count)
VIOLATING = [
    ("dpcf-ast-discarded-status",
     ["src/feedback/bad_discarded_multiline.cc"], 2),
    ("dpcf-ast-discarded-status",
     ["src/feedback/bad_discarded_alias.cc"], 2),
    ("dpcf-ast-unnamed-raii", ["src/storage/bad_unnamed_raii.cc"], 2),
    ("dpcf-ast-unnamed-raii", ["src/exec/bad_unnamed_brace.cc"], 1),
    ("dpcf-ast-unnamed-raii",
     ["src/storage/bad_unnamed_submission.cc"], 2),
    ("dpcf-ast-nondeterminism", ["src/core/bad_entropy_direct.cc"], 2),
    ("dpcf-ast-nondeterminism",
     ["src/core/bad_entropy_transitive.cc",
      "src/support/entropy_helper.cc"], 1),
    ("dpcf-ast-guard-consistency", ["src/storage/bad_guard_mixed.cc"], 1),
    ("dpcf-ast-guard-consistency",
     ["src/storage/bad_guard_outofline.cc"], 1),
    ("dpcf-ast-charge-conservation",
     ["src/exec/bad_charge_missing.cc"], 1),
    ("dpcf-ast-charge-conservation",
     ["src/exec/bad_charge_earlyreturn.cc"], 1),
    ("dpcf-ast-charge-conservation",
     ["src/storage/bad_charge_copyimage.cc"], 1),
]

CLEAN = [
    ("dpcf-ast-discarded-status", ["src/feedback/good_discarded.cc"]),
    ("dpcf-ast-unnamed-raii", ["src/exec/good_named_raii.cc"]),
    ("dpcf-ast-unnamed-raii", ["src/storage/good_submission_raii.cc"]),
    ("dpcf-ast-nondeterminism",
     ["src/core/good_entropy.cc", "src/obs/report_sink.cc"]),
    ("dpcf-ast-guard-consistency", ["src/storage/good_guard.cc"]),
    ("dpcf-ast-charge-conservation", ["src/exec/good_charge.cc"]),
    ("dpcf-ast-charge-conservation",
     ["src/storage/good_charge_copyimage.cc"]),
    # Violations present but suppressed -> clean (no --rule filter: every
    # rule must honor the suppressions).
    (None, ["src/storage/suppressed.cc"]),
]

# Rule-1/2 cases repeated on the clang engine when available.
CLANG_CASES = [
    ("dpcf-ast-discarded-status",
     ["src/feedback/bad_discarded_multiline.cc"], 2),
    ("dpcf-ast-discarded-status",
     ["src/feedback/bad_discarded_alias.cc"], 2),
    ("dpcf-ast-discarded-status", ["src/feedback/good_discarded.cc"], 0),
    ("dpcf-ast-unnamed-raii", ["src/storage/bad_unnamed_raii.cc"], 2),
    ("dpcf-ast-unnamed-raii", ["src/exec/bad_unnamed_brace.cc"], 1),
    ("dpcf-ast-unnamed-raii", ["src/exec/good_named_raii.cc"], 0),
    ("dpcf-ast-unnamed-raii",
     ["src/storage/bad_unnamed_submission.cc"], 2),
    ("dpcf-ast-unnamed-raii",
     ["src/storage/good_submission_raii.cc"], 0),
]


def run_ast(rule, rel_paths, extra=None, fixture_root=FIXTURES):
    cmd = [sys.executable, AST, "--engine", "python",
           "--rel-root", fixture_root]
    if rule:
        cmd += ["--rule", rule]
    cmd += extra or []
    cmd += [os.path.join(fixture_root, p) for p in rel_paths]
    return subprocess.run(cmd, capture_output=True, text=True)


def main():
    failures = []

    for rule, paths, expected in VIOLATING:
        proc = run_ast(rule, paths)
        findings = [ln for ln in proc.stdout.splitlines()
                    if f"[{rule}]" in ln]
        if proc.returncode != 1:
            failures.append(f"{rule} on {paths}: expected exit 1, got "
                            f"{proc.returncode}\n{proc.stdout}{proc.stderr}")
        elif len(findings) != expected:
            failures.append(f"{rule} on {paths}: expected {expected} "
                            f"finding(s), got {len(findings)}:\n"
                            + "\n".join(findings))
        else:
            print(f"ok  (violating) {rule}: {len(findings)} finding(s)")

    for rule, paths in CLEAN:
        proc = run_ast(rule, paths)
        if proc.returncode != 0:
            failures.append(f"{rule or 'all rules'} on {paths}: expected "
                            f"clean exit 0, got {proc.returncode}\n"
                            f"{proc.stdout}{proc.stderr}")
        else:
            print(f"ok  (clean)     {rule or 'all rules'}: {paths[-1]}")

    # The transitive-nondeterminism message must carry the call chain.
    proc = run_ast("dpcf-ast-nondeterminism",
                   ["src/core/bad_entropy_transitive.cc",
                    "src/support/entropy_helper.cc"])
    if "StampRun -> NowSeconds -> time()" not in proc.stdout:
        failures.append("transitive finding must name the call chain, "
                        f"got:\n{proc.stdout}")
    else:
        print("ok  (chain)     nondeterminism message names the chain")

    # --json emits machine-readable findings (the CI annotation step's
    # input).
    proc = run_ast("dpcf-ast-unnamed-raii",
                   ["src/storage/bad_unnamed_raii.cc"], extra=["--json", "-"])
    try:
        payload = json.loads(proc.stdout)
        assert payload["count"] == 2
        assert all(f["rule"] == "dpcf-ast-unnamed-raii"
                   for f in payload["findings"])
        print("ok  (json)      --json payload parses, count matches")
    except Exception as e:  # noqa: BLE001 - any mismatch is a failure
        failures.append(f"--json output invalid: {e}\n{proc.stdout}")

    # --fix must name the temporaries and leave the file clean.
    tmp = tempfile.mkdtemp(prefix="dpcf_ast_fix_")
    try:
        rel = "src/storage/bad_unnamed_raii.cc"
        dst = os.path.join(tmp, rel)
        os.makedirs(os.path.dirname(dst))
        shutil.copy(os.path.join(FIXTURES, rel), dst)
        proc = run_ast("dpcf-ast-unnamed-raii", [rel], extra=["--fix"],
                       fixture_root=tmp)
        if proc.returncode != 1:
            failures.append(f"--fix run: expected exit 1 (findings "
                            f"reported), got {proc.returncode}\n"
                            f"{proc.stdout}{proc.stderr}")
        proc = run_ast("dpcf-ast-unnamed-raii", [rel], fixture_root=tmp)
        if proc.returncode != 0:
            failures.append("after --fix the fixture must be clean, got "
                            f"exit {proc.returncode}:\n{proc.stdout}")
        else:
            with open(dst, encoding="utf-8") as fh:
                fixed = fh.read()
            if "MutexLock lock{mu}" not in fixed or \
                    "ScopedSpan span(" not in fixed:
                failures.append(f"--fix output unexpected:\n{fixed}")
            else:
                print("ok  (fix)       --fix names the temporaries; "
                      "re-run is clean")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    # The tree-wide walk must skip this fixture directory (and the
    # deliberately-violating TSA negative-compile cases).
    proc = subprocess.run(
        [sys.executable, AST, "--engine", "python",
         os.path.join(REPO, "tests")],
        capture_output=True, text=True)
    if proc.returncode != 0:
        failures.append("tree-wide analysis of tests/ must skip "
                        f"ast_selftest fixtures but exited "
                        f"{proc.returncode}:\n{proc.stdout}{proc.stderr}")
    else:
        print("ok  (discovery) tests/ walk skips ast_selftest fixtures")

    # Clang-engine agreement on the rule-1/2 fixtures, when available.
    failures.extend(run_clang_cases())

    if failures:
        print("\n".join(["", "FAILURES:"] + failures), file=sys.stderr)
        return 1
    print("\nast selftest: all cases passed")
    return 0


def run_clang_cases():
    require = os.environ.get("DPCF_AST_REQUIRE_CLANG") == "1"
    try:
        from clang import cindex  # noqa: F401
    except ImportError:
        if require:
            return ["DPCF_AST_REQUIRE_CLANG=1 but python bindings for "
                    "libclang are not importable"]
        print("--  (clang)     libclang not importable; clang-engine "
              "cases skipped")
        return []

    failures = []
    tmp = tempfile.mkdtemp(prefix="dpcf_ast_compdb_")
    try:
        entries = []
        for _, paths, _ in CLANG_CASES:
            for p in paths:
                full = os.path.join(FIXTURES, p)
                entries.append({"directory": FIXTURES,
                                "file": full,
                                "command": f"c++ -std=c++20 -c {full}"})
        compdb = os.path.join(tmp, "compile_commands.json")
        with open(compdb, "w", encoding="utf-8") as fh:
            json.dump(entries, fh)
        for rule, paths, expected in CLANG_CASES:
            cmd = [sys.executable, AST, "--engine", "clang",
                   "--compdb", compdb, "--rel-root", FIXTURES,
                   "--rule", rule]
            cmd += [os.path.join(FIXTURES, p) for p in paths]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            findings = [ln for ln in proc.stdout.splitlines()
                        if f"[{rule}]" in ln]
            want_exit = 1 if expected else 0
            if proc.returncode != want_exit or len(findings) != expected:
                failures.append(
                    f"[clang] {rule} on {paths}: expected {expected} "
                    f"finding(s)/exit {want_exit}, got {len(findings)}/"
                    f"{proc.returncode}\n{proc.stdout}{proc.stderr}")
            else:
                print(f"ok  (clang)     {rule}: {len(findings)} "
                      "finding(s)")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return failures


if __name__ == "__main__":
    sys.exit(main())
