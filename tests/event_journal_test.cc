// Flight-recorder event journal (obs/event_journal.h).
//
// The journal's contract is "always on, never torn": any thread may
// Record() under any latch while another thread snapshots, and a snapshot
// must contain only fully-written events. The multi-thread tests run under
// TSAN in CI — the seqlock copy path is relaxed atomics plus fences, so a
// data-race report here means the Boehm pattern was broken, not that the
// test is flaky.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/event_journal.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

using Event = EventJournal::Event;

TEST(EventJournalTest, RecordsAndSnapshotsInOrder) {
  EventJournal j(16);
  j.Record(JournalEvent::kRingSubmit, 7, 0);
  j.Record(JournalEvent::kRingDispatch, 7, 12);
  j.Record(JournalEvent::kRingComplete, 7, 90);
  std::vector<Event> events = j.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, JournalEvent::kRingSubmit);
  EXPECT_EQ(events[1].type, JournalEvent::kRingDispatch);
  EXPECT_EQ(events[2].type, JournalEvent::kRingComplete);
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[2].b, 90u);
  // Timestamps are monotone for a single writer.
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[1].ts_us, events[2].ts_us);
  // Snapshot does not consume.
  EXPECT_EQ(j.Snapshot().size(), 3u);
  EXPECT_EQ(j.thread_count(), 1u);
  EXPECT_EQ(j.dropped_torn(), 0);
}

TEST(EventJournalTest, DrainAdvancesTheWatermark) {
  EventJournal j(16);
  j.Record(JournalEvent::kEviction, 1, 0);
  j.Record(JournalEvent::kEviction, 2, 1);
  EXPECT_EQ(j.Drain().size(), 2u);
  EXPECT_TRUE(j.Drain().empty());
  j.Record(JournalEvent::kEviction, 3, 0);
  std::vector<Event> events = j.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].a, 3u);
}

TEST(EventJournalTest, WraparoundKeepsTheNewestEvents) {
  EventJournal j(8);
  for (uint64_t i = 0; i < 20; ++i) {
    j.Record(JournalEvent::kRingSubmit, i, 0);
  }
  std::vector<Event> events = j.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 12 + i);  // events 12..19 survive
  }
}

TEST(EventJournalTest, PerThreadRingsGetDistinctIndexes) {
  EventJournal j(64);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&j, t] {
      j.Record(JournalEvent::kMonitorBuild, static_cast<uint64_t>(t), 0);
    });
  }
  for (auto& t : threads) t.join();
  std::vector<Event> events = j.Snapshot();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads));
  EXPECT_EQ(j.thread_count(), static_cast<size_t>(kThreads));
  std::vector<bool> seen(kThreads, false);
  for (const Event& e : events) {
    ASSERT_LT(e.thread_index, static_cast<uint32_t>(kThreads));
    EXPECT_FALSE(seen[e.thread_index]) << "duplicate ring index";
    seen[e.thread_index] = true;
  }
}

// The TSAN centerpiece: writers hammer their rings (wrapping many times)
// while a reader drains concurrently. Every event carries an invariant
// (b == a ^ kMask) that a torn copy would violate; the seqlock must either
// deliver the event intact or count it as dropped — never hand back a
// half-written payload.
TEST(EventJournalTest, ConcurrentDrainObservesNoTornEvents) {
  constexpr uint64_t kMask = 0x5a5a5a5a5a5a5a5aull;
  EventJournal j(32);  // tiny ring => constant wraparound under load
  constexpr int kWriters = 4;
  constexpr uint64_t kEventsPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&j, w] {
      const uint64_t base = static_cast<uint64_t>(w) << 32;
      for (uint64_t i = 0; i < kEventsPerWriter; ++i) {
        const uint64_t a = base | i;
        j.Record(JournalEvent::kRingComplete, a, a ^ kMask);
      }
    });
  }
  uint64_t intact = 0;
  std::thread reader([&j, &stop, &intact] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const Event& e : j.Drain()) {
        ASSERT_EQ(e.type, JournalEvent::kRingComplete);
        ASSERT_EQ(e.b, e.a ^ kMask) << "torn event leaked from the seqlock";
        ++intact;
      }
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  // Final sweep after the writers quiesced.
  for (const Event& e : j.Drain()) {
    ASSERT_EQ(e.b, e.a ^ kMask);
    ++intact;
  }
  // Most events are overwritten before the reader gets to them (that is
  // the flight-recorder design); what matters is that everything delivered
  // was intact and the losses were *counted*, not silently absorbed.
  EXPECT_GT(intact, 0u);
  EXPECT_EQ(static_cast<uint64_t>(j.dropped_overwritten()) +
                static_cast<uint64_t>(j.dropped_torn()) + intact,
            kWriters * kEventsPerWriter);
}

TEST(EventJournalTest, ToJsonHasTheDocumentedShape) {
  EventJournal j(16);
  j.Record(JournalEvent::kReadaheadResize, 128, 64);
  j.Record(JournalEvent::kDriftAlert, 4500, 6);
  std::string json = j.ToJson();
  EXPECT_NE(json.find("\"capacity_per_thread\": 16"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_torn\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_overwritten\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"events\": ["), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"readahead_resize\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"drift_alert\""), std::string::npos);
  EXPECT_NE(json.find("\"a\": 128"), std::string::npos);
  EXPECT_NE(json.find("\"b\": 64"), std::string::npos);
}

TEST(EventJournalTest, EventNamesAreStable) {
  EXPECT_STREQ(JournalEventName(JournalEvent::kRingSubmit), "ring_submit");
  EXPECT_STREQ(JournalEventName(JournalEvent::kRingDispatch),
               "ring_dispatch");
  EXPECT_STREQ(JournalEventName(JournalEvent::kRingComplete),
               "ring_complete");
  EXPECT_STREQ(JournalEventName(JournalEvent::kBackpressureBegin),
               "backpressure_begin");
  EXPECT_STREQ(JournalEventName(JournalEvent::kBackpressureEnd),
               "backpressure_end");
  EXPECT_STREQ(JournalEventName(JournalEvent::kLoadingWait),
               "loading_wait");
  EXPECT_STREQ(JournalEventName(JournalEvent::kReadaheadResize),
               "readahead_resize");
  EXPECT_STREQ(JournalEventName(JournalEvent::kMonitorBuild),
               "monitor_build");
  EXPECT_STREQ(JournalEventName(JournalEvent::kMonitorMerge),
               "monitor_merge");
  EXPECT_STREQ(JournalEventName(JournalEvent::kEviction), "eviction");
  EXPECT_STREQ(JournalEventName(JournalEvent::kDriftAlert), "drift_alert");
}

TEST(EventJournalTest, ZeroCapacityIsClampedNotFatal) {
  EventJournal j(0);
  EXPECT_GE(j.capacity_per_thread(), 1u);
  j.Record(JournalEvent::kEviction, 1, 0);
  EXPECT_EQ(j.Snapshot().size(), 1u);
}

}  // namespace
}  // namespace dpcf
