// Index Intersection end-to-end: optimizer choice, execution correctness,
// and Fetch-side page-count monitoring (paper §II-A lists Index
// Intersection among the plans whose costing needs DPC).

#include <gtest/gtest.h>

#include "core/clustering_ratio.h"
#include "core/feedback_driver.h"
#include "core/monitor_manager.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

using dpcf::testing::SyntheticDbTest;

class IntersectionTest : public SyntheticDbTest {
 protected:
  void SetUp() override {
    SyntheticDbTest::SetUp();
    ASSERT_OK(stats_.BuildAll(db_->disk(), *t_));
  }

  SingleTableQuery TwoColumnQuery(int64_t v3, int64_t v5) {
    SingleTableQuery q;
    q.table = t_;
    q.count_star = true;
    q.count_col = kPadding;
    q.pred.Add(PredicateAtom::Int64(kC3, CmpOp::kLt, v3));
    q.pred.Add(PredicateAtom::Int64(kC5, CmpOp::kLt, v5));
    return q;
  }

  StatisticsCatalog stats_;
  OptimizerHints hints_;
};

TEST_F(IntersectionTest, OptimizerPicksIntersectionForConjunctiveNeedles) {
  // Each atom alone qualifies ~2% of rows (seek DPC via Yao is large);
  // together they qualify ~0.04% — a handful of fetches. Intersection
  // should win on cost even with analytical DPC.
  SingleTableQuery q = TwoColumnQuery(400, 400);
  Optimizer opt(db_.get(), &stats_, &hints_);
  ASSERT_OK_AND_ASSIGN(AccessPathPlan best, opt.OptimizeSingleTable(q));
  EXPECT_EQ(best.kind, AccessKind::kIndexIntersection) << best.Describe();
  ASSERT_EQ(best.ranges.size(), 2u);
}

TEST_F(IntersectionTest, MonitoredIntersectionCountsAndIsCorrect) {
  SingleTableQuery q = TwoColumnQuery(400, 400);
  Optimizer opt(db_.get(), &stats_, &hints_);
  ASSERT_OK_AND_ASSIGN(AccessPathPlan best, opt.OptimizeSingleTable(q));
  ASSERT_EQ(best.kind, AccessKind::kIndexIntersection);

  // Brute-force truth for the conjunction.
  ASSERT_OK_AND_ASSIGN(ClusteringRatioResult truth,
                       ComputeClusteringRatio(db_->disk(), *t_, q.pred));

  MonitorManager mm(db_.get());
  ASSERT_OK(db_->ColdCache());
  ExecContext ctx(db_->buffer_pool());
  ASSERT_OK_AND_ASSIGN(InstrumentedHooks ih, mm.ForSingleTable(best, q));
  ASSERT_FALSE(ih.hooks.fetch_requests.empty());
  ASSERT_OK_AND_ASSIGN(OperatorPtr root,
                       BuildSingleTableExec(best, q, ih.hooks));
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(root.get(), &ctx));
  ASSERT_EQ(run.output.size(), 1u);
  EXPECT_EQ(run.output[0][0].AsInt64(), truth.qualifying_rows);

  ASSERT_FALSE(run.stats.monitors.empty());
  const MonitorRecord& m = run.stats.monitors[0];
  EXPECT_EQ(m.actual_cardinality,
            static_cast<double>(truth.qualifying_rows));
  // A handful of distinct pages: linear counting is near-exact there.
  EXPECT_NEAR(m.actual_dpc, static_cast<double>(truth.actual_pages),
              std::max(2.0, 0.1 * truth.actual_pages));
}

TEST_F(IntersectionTest, IntersectionFetchesOnlyTheIntersectionPages) {
  SingleTableQuery q = TwoColumnQuery(400, 400);
  Optimizer opt(db_.get(), &stats_, &hints_);
  ASSERT_OK_AND_ASSIGN(AccessPathPlan best, opt.OptimizeSingleTable(q));
  ASSERT_OK(db_->ColdCache());
  ExecContext ctx(db_->buffer_pool());
  PlanMonitorHooks none;
  ASSERT_OK_AND_ASSIGN(OperatorPtr root,
                       BuildSingleTableExec(best, q, none));
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(root.get(), &ctx));
  // Seeks touch index leaves; data-page fetches are bounded by the
  // intersection size, far below either single seek's footprint.
  EXPECT_LT(run.stats.io.physical_reads(), 60)
      << run.stats.io.ToString();
}

TEST_F(IntersectionTest, FeedbackLoopHandlesIntersectionPlans) {
  // End-to-end through the driver: monitored intersection deposits
  // feedback for the combined expression without breaking the loop.
  SingleTableQuery q = TwoColumnQuery(400, 400);
  FeedbackDriver driver(db_.get(), &stats_, {});
  ASSERT_OK_AND_ASSIGN(FeedbackOutcome out, driver.RunSingleTable(q));
  EXPECT_NE(out.plan_before.find("IndexIntersection"), std::string::npos);
  // The truth matches the analytical estimate closely here (tiny
  // intersections land near their lower bound either way), so the plan
  // should not regress.
  EXPECT_GE(out.speedup, -0.05);
  bool found_combined = false;
  for (const MonitorRecord& m : out.feedback) {
    if (m.expr_text.find("C3<400") != std::string::npos &&
        m.expr_text.find("C5<400") != std::string::npos) {
      found_combined = true;
    }
  }
  EXPECT_TRUE(found_combined);
}

}  // namespace
}  // namespace dpcf
