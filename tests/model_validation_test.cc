// Model-validation properties: the analytical estimators and the cost
// model must agree with what the simulated substrate actually does.

#include <set>

#include <gtest/gtest.h>

#include "core/clustering_ratio.h"
#include "exec/executor.h"
#include "exec/index_ops.h"
#include "exec/scan_ops.h"
#include "optimizer/optimizer.h"
#include "optimizer/yao.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

using dpcf::testing::SyntheticDbTest;

class ModelValidationTest : public SyntheticDbTest {
 protected:
  void SetUp() override {
    SyntheticDbTest::SetUp();
    ASSERT_OK(stats_.BuildAll(db_->disk(), *t_));
  }
  StatisticsCatalog stats_;
  OptimizerHints hints_;
};

TEST_F(ModelValidationTest, YaoMatchesUncorrelatedTruth) {
  // On the random permutation column the independence assumption holds,
  // so Yao must match the exact DPC closely across selectivities.
  for (int64_t v : {200, 1000, 2000, 5000}) {
    Predicate pred({PredicateAtom::Int64(kC5, CmpOp::kLt, v)});
    ASSERT_OK_AND_ASSIGN(ClusteringRatioResult truth,
                         ComputeClusteringRatio(db_->disk(), *t_, pred));
    double yao = YaoEstimate(t_->page_count(), t_->rows_per_page(), v - 1);
    EXPECT_NEAR(yao, static_cast<double>(truth.actual_pages),
                0.05 * truth.actual_pages + 2)
        << "v=" << v;
  }
}

TEST_F(ModelValidationTest, YaoOverestimatesCorrelatedTruthBadly) {
  Predicate pred({PredicateAtom::Int64(kC2, CmpOp::kLt, 1000)});
  ASSERT_OK_AND_ASSIGN(ClusteringRatioResult truth,
                       ComputeClusteringRatio(db_->disk(), *t_, pred));
  double yao = YaoEstimate(t_->page_count(), t_->rows_per_page(), 999);
  EXPECT_GT(yao, 10.0 * truth.actual_pages)
      << "the paper's whole premise: analytical DPC misses clustering";
}

TEST_F(ModelValidationTest, SeekPhysicalReadsTrackDpc) {
  // Executing an index seek must touch about DPC distinct data pages
  // physically (plus the index descent/leaves).
  Predicate pred({PredicateAtom::Int64(kC5, CmpOp::kLt, 1000)});
  ASSERT_OK_AND_ASSIGN(ClusteringRatioResult truth,
                       ComputeClusteringRatio(db_->disk(), *t_, pred));
  ASSERT_OK(db_->ColdCache());
  ExecContext ctx(db_->buffer_pool());
  auto source = std::make_unique<IndexSeekSource>(
      db_->GetIndex("T_c5"), BtreeKey::Min(INT64_MIN), BtreeKey::Max(999));
  FetchOp fetch(t_, std::move(source), Predicate(), {});
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&fetch, &ctx));
  double physical = static_cast<double>(run.stats.io.physical_reads());
  EXPECT_GE(physical, static_cast<double>(truth.actual_pages));
  EXPECT_LE(physical, 1.15 * truth.actual_pages + 20)
      << "index pages and repeats are bounded";
}

TEST_F(ModelValidationTest, CorrelatedSeekIsMostlySequential) {
  // Fetching a correlated range touches consecutive pages: the simulated
  // disk must classify most physical reads as sequential.
  ASSERT_OK(db_->ColdCache());
  ExecContext ctx(db_->buffer_pool());
  auto source = std::make_unique<IndexSeekSource>(
      db_->GetIndex("T_c2"), BtreeKey::Min(INT64_MIN),
      BtreeKey::Max(4000));
  FetchOp fetch(t_, std::move(source), Predicate(), {});
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&fetch, &ctx));
  EXPECT_GT(run.stats.io.physical_seq_reads,
            run.stats.io.physical_rand_reads);

  // The scattered column is the opposite.
  ASSERT_OK(db_->ColdCache());
  ExecContext ctx2(db_->buffer_pool());
  auto source2 = std::make_unique<IndexSeekSource>(
      db_->GetIndex("T_c5"), BtreeKey::Min(INT64_MIN),
      BtreeKey::Max(4000));
  FetchOp fetch2(t_, std::move(source2), Predicate(), {});
  ASSERT_OK_AND_ASSIGN(RunResult run2, ExecutePlan(&fetch2, &ctx2));
  EXPECT_GT(run2.stats.io.physical_rand_reads,
            5 * run2.stats.io.physical_seq_reads);
}

TEST_F(ModelValidationTest, CostModelRanksPlansLikeTheSimulator) {
  // For a set of queries where the truth is known (DPC hints injected),
  // the plan the cost model prefers must also be the faster one when both
  // are actually executed.
  Optimizer opt_plain(db_.get(), &stats_, &hints_);
  for (int col : {kC2, kC5}) {
    for (int64_t v : {400, 2000}) {
      SingleTableQuery q;
      q.table = t_;
      q.count_star = true;
      q.count_col = kPadding;
      q.pred.Add(PredicateAtom::Int64(col, CmpOp::kLt, v));
      // Exact DPC for honest costing.
      ASSERT_OK_AND_ASSIGN(ClusteringRatioResult truth,
                           ComputeClusteringRatio(db_->disk(), *t_,
                                                  q.pred));
      OptimizerHints hints;
      hints.SetCardinality(SelPredKey(*t_, q.pred),
                           static_cast<double>(truth.qualifying_rows));
      hints.SetDpc(SelPredKey(*t_, q.pred),
                   static_cast<double>(truth.actual_pages));
      Optimizer opt(db_.get(), &stats_, &hints);
      ASSERT_OK_AND_ASSIGN(auto paths, opt.EnumerateAccessPaths(q));

      // Execute every candidate and find the actually-fastest.
      double best_cost = 1e300, best_cost_sim = 0;
      double fastest_sim = 1e300;
      for (const AccessPathPlan& p : paths) {
        ASSERT_OK(db_->ColdCache());
        ExecContext ctx(db_->buffer_pool());
        PlanMonitorHooks none;
        ASSERT_OK_AND_ASSIGN(OperatorPtr root,
                             BuildSingleTableExec(p, q, none));
        ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(root.get(), &ctx));
        fastest_sim = std::min(fastest_sim, run.stats.simulated_ms);
        if (p.est_cost < best_cost) {
          best_cost = p.est_cost;
          best_cost_sim = run.stats.simulated_ms;
        }
      }
      // The cost-model winner must be within 30% of the true fastest.
      EXPECT_LE(best_cost_sim, 1.3 * fastest_sim)
          << "col=" << col << " v=" << v;
    }
  }
}

TEST_F(ModelValidationTest, LogicalReadsDecomposeIntoHitsAndPhysical) {
  ASSERT_OK(db_->ColdCache());
  ExecContext ctx(db_->buffer_pool());
  TableScanOp scan(t_, Predicate(), {});
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&scan, &ctx));
  EXPECT_EQ(run.stats.io.logical_reads,
            run.stats.io.buffer_hits + run.stats.io.physical_reads());
}

TEST_F(ModelValidationTest, ExpectedAtomEvalsMatchesMeasuredEvals) {
  // The optimizer's short-circuit model must predict the scan's actual
  // predicate-evaluation count.
  Predicate pred({PredicateAtom::Int64(kC3, CmpOp::kLt, 2000),
                  PredicateAtom::Int64(kC5, CmpOp::kGe, 10'000)});
  Optimizer opt(db_.get(), &stats_, &hints_);
  double expected_per_row = opt.ExpectedAtomEvals(*t_, pred);

  ASSERT_OK(db_->ColdCache());
  ExecContext ctx(db_->buffer_pool());
  TableScanOp scan(t_, pred, {});
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&scan, &ctx));
  double measured_per_row =
      static_cast<double>(run.stats.cpu.predicate_atom_evals) /
      static_cast<double>(t_->row_count());
  EXPECT_NEAR(measured_per_row, expected_per_row, 0.05);
}

}  // namespace
}  // namespace dpcf
