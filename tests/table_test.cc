// Unit tests for table/: values, schemas, row codec, heap files, builder,
// catalog/database.

#include <gtest/gtest.h>

#include "common/random.h"
#include "table/catalog.h"
#include "table/row_codec.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

TEST(ValueTest, TypeAndCompare) {
  Value a = Value::Int64(3), b = Value::Int64(7);
  EXPECT_EQ(a.type(), ValueType::kInt64);
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_GT(b.Compare(a), 0);
  EXPECT_EQ(a.Compare(Value::Int64(3)), 0);
  EXPECT_TRUE(a < b);

  Value s1 = Value::String("abc"), s2 = Value::String("abd");
  EXPECT_LT(s1.Compare(s2), 0);
  EXPECT_TRUE(s1 == Value::String("abc"));
  EXPECT_FALSE(s1 == a);  // different type compares unequal
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Int64(-5).ToString(), "-5");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
  EXPECT_EQ(TupleToString({Value::Int64(1), Value::String("x")}),
            "(1, 'x')");
}

TEST(SchemaTest, OffsetsAndRowSize) {
  Schema s({Column::Int64("a"), Column::Char("b", 10), Column::Int64("c")});
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 8u);
  EXPECT_EQ(s.offset(2), 18u);
  EXPECT_EQ(s.row_size(), 26u);
  EXPECT_EQ(s.ColumnIndex("b"), 1);
  EXPECT_EQ(s.ColumnIndex("missing"), -1);
  EXPECT_EQ(s.ToString(), "(a INT64, b CHAR(10), c INT64)");
}

class RowCodecTest : public ::testing::Test {
 protected:
  RowCodecTest()
      : schema_({Column::Int64("id"), Column::Char("name", 8),
                 Column::Int64("v")}),
        codec_(&schema_) {}
  Schema schema_;
  RowCodec codec_;
};

TEST_F(RowCodecTest, Roundtrip) {
  Tuple in{Value::Int64(42), Value::String("bob"), Value::Int64(-1)};
  std::vector<char> buf(schema_.row_size());
  ASSERT_OK(codec_.Encode(in, buf.data()));
  Tuple out = codec_.Decode(buf.data());
  EXPECT_EQ(out[0].AsInt64(), 42);
  EXPECT_EQ(out[1].AsString(), "bob");  // padding trimmed
  EXPECT_EQ(out[2].AsInt64(), -1);
}

TEST_F(RowCodecTest, RowViewZeroCopyAccess) {
  Tuple in{Value::Int64(7), Value::String("xy"), Value::Int64(9)};
  std::vector<char> buf(schema_.row_size());
  ASSERT_OK(codec_.Encode(in, buf.data()));
  RowView view(buf.data(), &schema_);
  EXPECT_EQ(view.GetInt64(0), 7);
  EXPECT_EQ(view.GetString(1), std::string_view("xy      "));
  EXPECT_EQ(view.GetInt64(2), 9);
  Tuple proj = view.Materialize({2, 0});
  EXPECT_EQ(proj[0].AsInt64(), 9);
  EXPECT_EQ(proj[1].AsInt64(), 7);
}

TEST_F(RowCodecTest, EncodeRejectsArityMismatch) {
  EXPECT_FALSE(codec_.Encode({Value::Int64(1)}, nullptr).ok());
}

TEST_F(RowCodecTest, EncodeRejectsTypeMismatch) {
  std::vector<char> buf(schema_.row_size());
  Tuple bad{Value::String("no"), Value::String("x"), Value::Int64(1)};
  EXPECT_EQ(codec_.Encode(bad, buf.data()).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RowCodecTest, EncodeRejectsOverlongString) {
  std::vector<char> buf(schema_.row_size());
  Tuple bad{Value::Int64(1), Value::String("waytoolongname"),
            Value::Int64(1)};
  EXPECT_EQ(codec_.Encode(bad, buf.data()).code(),
            StatusCode::kInvalidArgument);
}

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : disk_(256), pool_(&disk_, 16) {
    schema_ = std::make_unique<Schema>(std::vector<Column>{
        Column::Int64("a"), Column::Int64("b")});
    seg_ = disk_.CreateSegment("t");
    file_ = std::make_unique<HeapFile>(&pool_, seg_, schema_.get());
  }
  DiskManager disk_;
  BufferPool pool_;
  std::unique_ptr<Schema> schema_;
  SegmentId seg_;
  std::unique_ptr<HeapFile> file_;
};

TEST_F(HeapFileTest, RowsPerPageArithmetic) {
  // (256 - 8) / 16 = 15 rows per page.
  EXPECT_EQ(file_->rows_per_page(), 15u);
}

TEST_F(HeapFileTest, AppendSpillsToNewPages) {
  for (int64_t i = 0; i < 40; ++i) {
    auto rid = file_->Append({Value::Int64(i), Value::Int64(i * 2)});
    ASSERT_TRUE(rid.ok());
    EXPECT_EQ(rid->page_no, static_cast<PageNo>(i / 15));
    EXPECT_EQ(rid->slot, static_cast<uint16_t>(i % 15));
  }
  file_->Seal();
  EXPECT_EQ(file_->page_count(), 3u);
  EXPECT_EQ(file_->row_count(), 40);
}

TEST_F(HeapFileTest, FetchRowReturnsStoredBytes) {
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(file_->Append({Value::Int64(i), Value::Int64(i * i)}).ok());
  }
  file_->Seal();
  const char* row = nullptr;
  auto guard = file_->FetchRow(Rid{1, 2}, &row);  // 18th row: i = 17
  ASSERT_TRUE(guard.ok());
  RowView view(row, schema_.get());
  EXPECT_EQ(view.GetInt64(0), 17);
  EXPECT_EQ(view.GetInt64(1), 289);
}

TEST_F(HeapFileTest, FetchRowRejectsBadRids) {
  ASSERT_TRUE(file_->Append({Value::Int64(1), Value::Int64(2)}).ok());
  file_->Seal();
  const char* row = nullptr;
  EXPECT_EQ(file_->FetchRow(Rid{5, 0}, &row).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(file_->FetchRow(Rid{0, 9}, &row).status().code(),
            StatusCode::kOutOfRange);
}

TEST(RidTest, PackUnpackRoundtrip) {
  Rid r{123456, 789};
  Rid back = Rid::Unpack(r.Pack());
  EXPECT_EQ(back, r);
  EXPECT_EQ(back.ToString(), "123456.789");
}

TEST(TableBuilderTest, ClusteredTableIsSortedByKey) {
  Database db([] { DatabaseOptions o; o.page_size = 512; o.buffer_pool_pages = 64; return o; }());
  Schema schema({Column::Int64("k"), Column::Int64("v")});
  auto table =
      db.CreateTable("t", schema, TableOrganization::kClustered, 0);
  ASSERT_TRUE(table.ok());
  TableBuilder builder(*table);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK(builder.AddRow(
        {Value::Int64(rng.NextInt(0, 10'000)), Value::Int64(i)}));
  }
  ASSERT_OK(builder.Finish());

  // Walk pages in order; keys must be non-decreasing.
  const HeapFile* file = (*table)->file();
  int64_t prev = INT64_MIN;
  int64_t rows_seen = 0;
  for (PageNo p = 0; p < file->page_count(); ++p) {
    const char* page = db.disk()->RawPage(PageId{file->segment(), p});
    uint32_t n = HeapFile::PageRowCount(page);
    for (uint16_t s = 0; s < n; ++s) {
      RowView row(file->RowInPage(page, s), &(*table)->schema());
      EXPECT_GE(row.GetInt64(0), prev);
      prev = row.GetInt64(0);
      ++rows_seen;
    }
  }
  EXPECT_EQ(rows_seen, 500);
}

TEST(TableBuilderTest, HeapPreservesInsertionOrder) {
  Database db([] { DatabaseOptions o; o.page_size = 512; o.buffer_pool_pages = 64; return o; }());
  Schema schema({Column::Int64("k")});
  auto table = db.CreateTable("h", schema, TableOrganization::kHeap);
  ASSERT_TRUE(table.ok());
  TableBuilder builder(*table);
  for (int i = 9; i >= 0; --i) {
    ASSERT_OK(builder.AddRow({Value::Int64(i)}));
  }
  ASSERT_OK(builder.Finish());
  const char* row = nullptr;
  auto g = (*table)->file()->FetchRow(Rid{0, 0}, &row);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(RowView(row, &(*table)->schema()).GetInt64(0), 9);
}

TEST(CatalogTest, DuplicateNamesRejected) {
  Database db;
  Schema schema({Column::Int64("k")});
  ASSERT_TRUE(db.CreateTable("t", schema, TableOrganization::kHeap).ok());
  EXPECT_EQ(db.CreateTable("t", schema, TableOrganization::kHeap)
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.GetTable("missing"), nullptr);
  EXPECT_NE(db.GetTable("t"), nullptr);
}

TEST(CatalogTest, ClusteredTableNeedsValidKeyColumn) {
  Database db;
  Schema schema({Column::Int64("k")});
  EXPECT_FALSE(
      db.CreateTable("bad", schema, TableOrganization::kClustered, 5).ok());
  EXPECT_FALSE(
      db.CreateTable("bad2", schema, TableOrganization::kClustered, -1)
          .ok());
}

TEST(CatalogTest, IndexLookupAndPerTableListing) {
  Database db([] { DatabaseOptions o; o.page_size = 512; o.buffer_pool_pages = 64; return o; }());
  Schema schema({Column::Int64("a"), Column::Int64("b")});
  auto t = db.CreateTable("t", schema, TableOrganization::kHeap);
  ASSERT_TRUE(t.ok());
  TableBuilder builder(*t);
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(builder.AddRow({Value::Int64(i), Value::Int64(50 - i)}));
  }
  ASSERT_OK(builder.Finish());
  ASSERT_TRUE(db.CreateIndex("t_a", "t", std::vector<int>{0}).ok());
  ASSERT_TRUE(
      db.CreateIndex("t_ab", "t",
                     std::vector<std::string>{"a", "b"})
          .ok());
  EXPECT_EQ(db.catalog().IndexesForTable(*t).size(), 2u);
  EXPECT_NE(db.GetIndex("t_a"), nullptr);
  EXPECT_EQ(db.GetIndex("nope"), nullptr);
  EXPECT_EQ(db.CreateIndex("t_a", "t", std::vector<int>{1})
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.CreateIndex("x", "missing", std::vector<int>{0})
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, IndexRejectsStringKeyColumns) {
  Database db([] { DatabaseOptions o; o.page_size = 512; o.buffer_pool_pages = 64; return o; }());
  Schema schema({Column::Int64("a"), Column::Char("s", 8)});
  auto t = db.CreateTable("t", schema, TableOrganization::kHeap);
  ASSERT_TRUE(t.ok());
  TableBuilder builder(*t);
  ASSERT_OK(builder.AddRow({Value::Int64(1), Value::String("x")}));
  ASSERT_OK(builder.Finish());
  EXPECT_EQ(db.CreateIndex("t_s", "t", std::vector<int>{1})
                .status()
                .code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(db.CreateIndex("t_3", "t", std::vector<int>{0, 1, 0})
                .status()
                .code(),
            StatusCode::kNotSupported);
}

}  // namespace
}  // namespace dpcf
