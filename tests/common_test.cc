// Unit tests for common/: Status/Result, hashing, RNG, string utilities.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace dpcf {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table X");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table X");
  EXPECT_EQ(s.ToString(), "NotFound: table X");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotSupported), "NotSupported");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v * 2;
}

Result<int> Chain(int v) {
  DPCF_ASSIGN_OR_RETURN(int doubled, ParsePositive(v));
  return doubled + 1;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err = ParsePositive(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  Result<int> ok = Chain(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 11);
  Result<int> err = Chain(0);
  EXPECT_FALSE(err.ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(HashTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10'000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 10'000u) << "Mix64 is bijective on distinct inputs";
}

TEST(HashTest, SeededHashesDiffer) {
  int differing = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    if (Mix64Seeded(i, 1) != Mix64Seeded(i, 2)) ++differing;
  }
  EXPECT_GT(differing, 990);
}

TEST(HashTest, HashBytesMatchesForEqualInput) {
  EXPECT_EQ(HashBytes("hello"), HashBytes("hello"));
  EXPECT_NE(HashBytes("hello"), HashBytes("hellp"));
  EXPECT_NE(HashBytes("hello", 1), HashBytes("hello", 2));
}

TEST(RngTest, Deterministic) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(RngTest, NextIntInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.NextBernoulli(0.1);
  EXPECT_NEAR(hits / 100'000.0, 0.1, 0.01);
}

TEST(PermutationTest, IdentityAndRandomArePermutations) {
  Rng rng(5);
  for (int64_t n : {1, 2, 17, 1000}) {
    auto id = IdentityPermutation(n);
    auto rand = RandomPermutation(n, &rng);
    auto sorted = rand;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, id) << "n=" << n;
  }
}

TEST(PermutationTest, WindowShuffleRespectsWindows) {
  Rng rng(6);
  const int64_t n = 1000, w = 10;
  auto perm = WindowShuffledPermutation(n, w, &rng);
  auto sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, IdentityPermutation(n));
  for (int64_t i = 0; i < n; ++i) {
    // Element at position i came from the same window.
    EXPECT_EQ(i / w, perm[static_cast<size_t>(i)] / w) << "i=" << i;
  }
}

TEST(PermutationTest, WindowOneIsIdentityFullIsShuffled) {
  Rng rng(7);
  EXPECT_EQ(WindowShuffledPermutation(100, 1, &rng),
            IdentityPermutation(100));
  auto full = WindowShuffledPermutation(1000, 1000, &rng);
  int64_t displaced = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    displaced += (full[static_cast<size_t>(i)] != i);
  }
  EXPECT_GT(displaced, 900);
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, SamplesInRangeAndSkewed) {
  const double s = GetParam();
  ZipfDistribution zipf(1000, s);
  Rng rng(8);
  std::vector<int64_t> counts(1001, 0);
  for (int i = 0; i < 100'000; ++i) {
    int64_t v = zipf.Sample(&rng);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 1000);
    ++counts[static_cast<size_t>(v)];
  }
  if (s >= 1.0) {
    // Rank 1 should dominate rank 10 by roughly 10^s.
    ASSERT_GT(counts[1], 0);
    ASSERT_GT(counts[10], 0);
    double ratio = static_cast<double>(counts[1]) / counts[10];
    EXPECT_GT(ratio, std::pow(10.0, s) * 0.5);
    EXPECT_LT(ratio, std::pow(10.0, s) * 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfTest, ::testing::Values(0.0, 1.0, 1.5));

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringUtilTest, XmlEscape) {
  EXPECT_EQ(XmlEscape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

TEST(StringUtilTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(1.5, 4), "1.5");
  EXPECT_EQ(FormatDouble(2.0, 4), "2.0");
  EXPECT_EQ(FormatDouble(0.125, 2), "0.12");  // round-half-even
  EXPECT_EQ(FormatDouble(0.375, 2), "0.38");
}

TEST(StringUtilTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(-1234), "-1,234");
}

}  // namespace
}  // namespace dpcf
