// Joins on the TPC-H-like pair (paper Example 1's closing remark: orders
// and lineitem both clustered by correlated attributes affects INL-join
// costing). orders ⋈ lineitem on orderkey is clustered on BOTH sides, so
// the merge join streams without sorts and the partial bitvector applies.

#include <gtest/gtest.h>

#include "core/feedback_driver.h"
#include "tests/test_util.h"
#include "workload/tpch_like.h"

namespace dpcf {
namespace {

class TpchJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(
        [] { DatabaseOptions o; o.page_size = kDefaultPageSize; o.buffer_pool_pages = 2048; return o; }());
    TpchLikeOptions opts;
    opts.lineitem_rows = 40'000;
    auto tables = BuildTpchLike(db_.get(), opts);
    ASSERT_TRUE(tables.ok()) << tables.status().ToString();
    lineitem_ = tables->lineitem;
    orders_ = tables->orders;
    ASSERT_OK(stats_.BuildAll(db_->disk(), *lineitem_));
    ASSERT_OK(stats_.BuildAll(db_->disk(), *orders_));
  }

  JoinQuery OrdersLineitemJoin(int64_t max_orderkey) {
    JoinQuery q;
    q.outer_table = orders_;
    q.outer_pred.Add(
        PredicateAtom::Int64(0, CmpOp::kLe, max_orderkey));  // o_orderkey
    q.outer_col = 0;
    q.inner_table = lineitem_;
    q.inner_col = kLOrderKey;
    q.count_star = true;
    q.inner_count_col = kLComment;
    return q;
  }

  std::unique_ptr<Database> db_;
  Table* lineitem_ = nullptr;
  Table* orders_ = nullptr;
  StatisticsCatalog stats_;
};

TEST_F(TpchJoinTest, AllJoinMethodsAgreeOnLineitemCount) {
  JoinQuery q = OrdersLineitemJoin(500);
  // Truth: lineitems of the first 500 orders, by raw walk.
  const Predicate li_pred(
      {PredicateAtom::Int64(kLOrderKey, CmpOp::kLe, 500)});
  const int64_t truth = ExactCardinality(db_->disk(), *lineitem_, li_pred);
  ASSERT_GT(truth, 500);

  OptimizerHints hints;
  Optimizer opt(db_.get(), &stats_, &hints);
  ASSERT_OK_AND_ASSIGN(auto plans, opt.EnumerateJoinPlans(q));
  ASSERT_GE(plans.size(), 3u);
  for (const JoinPlan& plan : plans) {
    ASSERT_OK(db_->ColdCache());
    ExecContext ctx(db_->buffer_pool());
    PlanMonitorHooks none;
    ASSERT_OK_AND_ASSIGN(OperatorPtr root, BuildJoinExec(plan, q, none));
    ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(root.get(), &ctx));
    EXPECT_EQ(run.output[0][0].AsInt64(), truth) << plan.Describe();
  }
}

TEST_F(TpchJoinTest, BothSidesClusteredMeansMergeWithoutSorts) {
  OptimizerHints hints;
  Optimizer opt(db_.get(), &stats_, &hints);
  ASSERT_OK_AND_ASSIGN(auto plans,
                       opt.EnumerateJoinPlans(OrdersLineitemJoin(500)));
  bool saw_merge = false;
  for (const JoinPlan& p : plans) {
    if (p.method != JoinMethod::kMergeJoin) continue;
    saw_merge = true;
    EXPECT_FALSE(p.sort_outer);
    EXPECT_FALSE(p.sort_inner);
  }
  EXPECT_TRUE(saw_merge);
}

TEST_F(TpchJoinTest, FeedbackDiagnosesButDoesNotRegressClusteredFk) {
  // orderkey is the load order of lineitem: the matching lineitems of the
  // first ~3% of orders are contiguous. The best plan here is the merge
  // join, which terminates early on the bounded outer — the cost model
  // knows that (early-termination costing), so feedback must diagnose the
  // Yao error in the DPC record WITHOUT flipping to a worse INL plan.
  const int64_t max_orderkey = orders_->row_count() / 33;
  JoinQuery q = OrdersLineitemJoin(max_orderkey);
  FeedbackDriver driver(db_.get(), &stats_, {});
  ASSERT_OK_AND_ASSIGN(FeedbackOutcome out, driver.RunJoin(q));
  EXPECT_NE(out.plan_before.find("MergeJoin"), std::string::npos)
      << out.plan_before;
  EXPECT_GE(out.speedup, -0.05) << "feedback must not regress the plan";
  EXPECT_LT(out.monitor_overhead, 0.05);

  // The diagnosis value is still delivered: the analytical estimate for
  // the join's page count is far above the clustered truth.
  bool found = false;
  for (const MonitorRecord& m : out.feedback) {
    if (m.label == JoinPredKey(*orders_, 0, *lineitem_, kLOrderKey)) {
      found = true;
      EXPECT_GT(m.estimated_dpc, 4 * m.actual_dpc);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace dpcf
