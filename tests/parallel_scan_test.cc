// Parallel-vs-serial equivalence for the morsel-parallel scan: identical
// output tuples in identical order, and bit-for-bit identical merged DPC
// feedback (exact and sampled), at any thread count. Also unit-tests the
// merge operations of the underlying mergeable sketches.

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/dpsample.h"
#include "core/grouped_page_counter.h"
#include "core/linear_counter.h"
#include "exec/executor.h"
#include "exec/parallel_scan.h"
#include "exec/scan_ops.h"
#include "optimizer/plan.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

using testing::SyntheticDbTest;

// ---------------------------------------------------------------- MorselQueue

TEST(MorselQueueTest, CoversRangeExactlyOnce) {
  MorselQueue queue(100, 32);
  EXPECT_EQ(queue.num_morsels(), 4u);
  std::vector<bool> covered(100, false);
  uint32_t morsel;
  PageNo begin, end;
  std::set<uint32_t> morsels;
  while (queue.Next(&morsel, &begin, &end)) {
    EXPECT_TRUE(morsels.insert(morsel).second);
    for (PageNo p = begin; p < end; ++p) {
      EXPECT_FALSE(covered[p]);
      covered[p] = true;
    }
  }
  for (bool c : covered) EXPECT_TRUE(c);
  EXPECT_EQ(morsels.size(), 4u);
}

TEST(MorselQueueTest, EmptyRangeAndOddSizes) {
  MorselQueue empty(0, 32);
  EXPECT_EQ(empty.num_morsels(), 0u);
  uint32_t m;
  PageNo b, e;
  EXPECT_FALSE(empty.Next(&m, &b, &e));

  MorselQueue odd(33, 32);
  EXPECT_EQ(odd.num_morsels(), 2u);
  ASSERT_TRUE(odd.Next(&m, &b, &e));
  EXPECT_EQ(e - b, 32u);
  ASSERT_TRUE(odd.Next(&m, &b, &e));
  EXPECT_EQ(b, 32u);
  EXPECT_EQ(e, 33u);
}

// ----------------------------------------------------------- sketch merging

TEST(LinearCounterMergeTest, OrMergeMatchesSingleCounter) {
  LinearCounter whole(1 << 12, 99);
  LinearCounter half_a(1 << 12, 99);
  LinearCounter half_b(1 << 12, 99);
  for (uint64_t v = 0; v < 4000; ++v) {
    whole.Add(v);
    (v % 2 == 0 ? half_a : half_b).Add(v);
  }
  ASSERT_OK(half_a.MergeFrom(half_b));
  EXPECT_EQ(half_a.BitsSet(), whole.BitsSet());
  EXPECT_DOUBLE_EQ(half_a.Estimate(), whole.Estimate());
}

TEST(LinearCounterMergeTest, RejectsMismatchedConfig) {
  LinearCounter a(1 << 12, 1);
  LinearCounter b(1 << 12, 2);
  EXPECT_FALSE(a.MergeFrom(b).ok());
  LinearCounter c(1 << 13, 1);
  EXPECT_FALSE(a.MergeFrom(c).ok());
}

TEST(GroupedPageCounterMergeTest, SumsDisjointPages) {
  GroupedPageCounter whole, part_a, part_b;
  auto drive = [](GroupedPageCounter* c, int satisfying_rows) {
    c->BeginPage();
    for (int r = 0; r < satisfying_rows; ++r) c->OnRowSatisfies();
    c->EndPage();
  };
  // Pages 0..5 with varying satisfying-row counts, split between a and b.
  const int rows_per_page[] = {3, 0, 1, 0, 7, 2};
  for (int p = 0; p < 6; ++p) {
    drive(&whole, rows_per_page[p]);
    drive(p % 2 == 0 ? &part_a : &part_b, rows_per_page[p]);
  }
  // void merge; the name collides with the bundles' Status MergeFrom.
  part_a.MergeFrom(part_b);  // NOLINT(dpcf-discarded-status)
  EXPECT_EQ(part_a.pages_seen(), whole.pages_seen());
  EXPECT_EQ(part_a.pages_satisfying(), whole.pages_satisfying());
  EXPECT_EQ(part_a.rows_satisfying(), whole.rows_satisfying());
}

TEST(ScanMonitorBundleMergeTest, RejectsMismatchedBundles) {
  Schema* schema = nullptr;  // never dereferenced for these failures
  ScanMonitorBundle a(Predicate(), schema, 0.5, 1);
  ScanMonitorBundle b(Predicate(), schema, 0.5, 2);  // different seed
  EXPECT_FALSE(a.MergeFrom(b).ok());
  ScanMonitorBundle c(Predicate(), schema, 0.25, 1);  // different fraction
  EXPECT_FALSE(a.MergeFrom(c).ok());
}

// -------------------------------------------------- parallel == serial

class ParallelScanTest : public SyntheticDbTest {
 protected:
  static Predicate Pushed() {
    return Predicate({PredicateAtom::Int64(kC3, CmpOp::kLt, 4000),
                      PredicateAtom::Int64(kC5, CmpOp::kGe, 10'000)});
  }

  // One prefix-exact request (the pushed conjunction's leading atom), one
  // full-conjunction prefix request, and one genuinely sampled request on
  // an unrelated column — covers all three monitor modes at f < 1.
  std::unique_ptr<ScanMonitorBundle> MakeBundle() {
    auto bundle = std::make_unique<ScanMonitorBundle>(
        Pushed(), &t_->schema(), /*sample_fraction=*/0.2, /*seed=*/99);
    ScanExprRequest lead;
    lead.label = "T: C3<4000";
    lead.expr = Predicate({PredicateAtom::Int64(kC3, CmpOp::kLt, 4000)});
    EXPECT_OK(bundle->AddRequest(lead));
    ScanExprRequest full;
    full.label = "T: full";
    full.expr = Pushed();
    EXPECT_OK(bundle->AddRequest(full));
    ScanExprRequest sampled;
    sampled.label = "T: C4<2000";
    sampled.expr = Predicate({PredicateAtom::Int64(kC4, CmpOp::kLt, 2000)});
    EXPECT_OK(bundle->AddRequest(sampled));
    return bundle;
  }

  RunResult Run(Operator* op) {
    DPCF_CHECK_OK(db_->ColdCache());
    ExecContext ctx(db_->buffer_pool());
    auto result = ExecutePlan(op, &ctx);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }
};

TEST_F(ParallelScanTest, MatchesSerialTuplesAndFeedback) {
  TableScanOp serial(t_, Pushed(), {kC1, kC5}, MakeBundle());
  RunResult serial_run = Run(&serial);
  ASSERT_GT(serial_run.output.size(), 0u);
  ASSERT_EQ(serial_run.stats.monitors.size(), 3u);

  for (int threads : {1, 2, 4}) {
    ParallelTableScanOp parallel(t_, Pushed(), {kC1, kC5}, MakeBundle(),
                                 ParallelScanOptions{threads, 8});
    RunResult parallel_run = Run(&parallel);

    // Identical tuples in identical (page) order.
    ASSERT_EQ(parallel_run.output.size(), serial_run.output.size())
        << "threads=" << threads;
    for (size_t i = 0; i < serial_run.output.size(); ++i) {
      ASSERT_TRUE(parallel_run.output[i] == serial_run.output[i])
          << "tuple " << i << " differs at threads=" << threads;
    }

    // Bit-for-bit identical merged DPC feedback.
    ASSERT_EQ(parallel_run.stats.monitors.size(),
              serial_run.stats.monitors.size());
    for (size_t i = 0; i < serial_run.stats.monitors.size(); ++i) {
      const MonitorRecord& s = serial_run.stats.monitors[i];
      const MonitorRecord& p = parallel_run.stats.monitors[i];
      EXPECT_EQ(p.label, s.label);
      EXPECT_EQ(p.mechanism, s.mechanism);
      EXPECT_EQ(p.actual_dpc, s.actual_dpc)
          << s.label << " at threads=" << threads;
      EXPECT_EQ(p.actual_cardinality, s.actual_cardinality)
          << s.label << " at threads=" << threads;
      EXPECT_EQ(p.exact, s.exact);
    }

    // Identical logical I/O too: every page read exactly once per run.
    EXPECT_EQ(parallel_run.stats.io.logical_reads,
              serial_run.stats.io.logical_reads);
  }
}

TEST_F(ParallelScanTest, ReadaheadPreservesFeedbackAndAccounting) {
  TableScanOp serial(t_, Pushed(), {kC1, kC5}, MakeBundle());
  RunResult serial_run = Run(&serial);
  ASSERT_GT(serial_run.output.size(), 0u);
  EXPECT_EQ(serial_run.stats.io.prefetch_reads, 0);

  for (int threads : {1, 4}) {
    ParallelTableScanOp parallel(
        t_, Pushed(), {kC1, kC5}, MakeBundle(),
        ParallelScanOptions{threads, 8, /*prefetch_pages=*/64});
    RunResult parallel_run = Run(&parallel);

    // Identical tuples in identical order — readahead only changes *when*
    // pages enter the pool, never what the scan sees.
    ASSERT_EQ(parallel_run.output.size(), serial_run.output.size())
        << "threads=" << threads;
    for (size_t i = 0; i < serial_run.output.size(); ++i) {
      ASSERT_TRUE(parallel_run.output[i] == serial_run.output[i])
          << "tuple " << i << " differs at threads=" << threads;
    }

    // Bit-for-bit identical merged DPC feedback with readahead enabled.
    ASSERT_EQ(parallel_run.stats.monitors.size(),
              serial_run.stats.monitors.size());
    for (size_t i = 0; i < serial_run.stats.monitors.size(); ++i) {
      const MonitorRecord& s = serial_run.stats.monitors[i];
      const MonitorRecord& p = parallel_run.stats.monitors[i];
      EXPECT_EQ(p.label, s.label);
      EXPECT_EQ(p.actual_dpc, s.actual_dpc)
          << s.label << " at threads=" << threads;
      EXPECT_EQ(p.actual_cardinality, s.actual_cardinality)
          << s.label << " at threads=" << threads;
    }

    // Honest accounting: the readahead thread actually ran, and every page
    // entered the pool exactly once — charged either as a prefetch or as a
    // demand physical read, never both (a prefetched page's later fetch is
    // a logical read + buffer hit).
    EXPECT_GT(parallel_run.stats.io.prefetch_reads, 0)
        << "threads=" << threads;
    EXPECT_EQ(static_cast<int64_t>(parallel_run.stats.io.prefetch_reads) +
                  parallel_run.stats.io.physical_reads(),
              serial_run.stats.io.physical_reads())
        << "threads=" << threads;
    EXPECT_EQ(parallel_run.stats.io.logical_reads,
              serial_run.stats.io.logical_reads)
        << "threads=" << threads;
  }
}

TEST_F(ParallelScanTest, EmptyPredicateFullScanMatches) {
  TableScanOp serial(t_, Predicate(), {kC1}, nullptr);
  RunResult serial_run = Run(&serial);
  EXPECT_EQ(serial_run.output.size(), 20'000u);

  ParallelTableScanOp parallel(t_, Predicate(), {kC1}, nullptr,
                               ParallelScanOptions{4, 8});
  RunResult parallel_run = Run(&parallel);
  ASSERT_EQ(parallel_run.output.size(), serial_run.output.size());
  for (size_t i = 0; i < serial_run.output.size(); ++i) {
    ASSERT_TRUE(parallel_run.output[i] == serial_run.output[i]);
  }
  // Per-row CPU accounting folds back from the workers.
  EXPECT_EQ(parallel_run.stats.cpu.rows_processed,
            serial_run.stats.cpu.rows_processed);
}

TEST_F(ParallelScanTest, PlannerLowersToParallelScan) {
  AccessPathPlan path;
  path.kind = AccessKind::kTableScan;
  path.table = t_;
  path.full_pred = Pushed();

  SingleTableQuery query;
  query.table = t_;
  query.pred = Pushed();
  query.count_star = true;

  PlanMonitorHooks serial_hooks;
  ASSERT_OK_AND_ASSIGN(OperatorPtr serial_op,
                       BuildSingleTableExec(path, query, serial_hooks));
  RunResult serial_run = Run(serial_op.get());

  PlanMonitorHooks parallel_hooks;
  parallel_hooks.scan_threads = 4;
  parallel_hooks.morsel_pages = 8;
  parallel_hooks.prefetch_pages = 32;
  ASSERT_OK_AND_ASSIGN(OperatorPtr parallel_op,
                       BuildSingleTableExec(path, query, parallel_hooks));
  EXPECT_NE(DescribeTree(*parallel_op).find("Parallel"), std::string::npos);
  EXPECT_NE(DescribeTree(*parallel_op).find("prefetch=32"),
            std::string::npos);
  RunResult parallel_run = Run(parallel_op.get());

  ASSERT_EQ(parallel_run.output.size(), 1u);
  ASSERT_EQ(serial_run.output.size(), 1u);
  EXPECT_TRUE(parallel_run.output[0] == serial_run.output[0]);
}

}  // namespace
}  // namespace dpcf
