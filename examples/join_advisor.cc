// Join-method advisor (paper Section IV / Example 2): enumerate join
// strategies with their costs, execute the optimizer's Hash Join with the
// bitvector filter monitoring DPC(inner, join-pred), and show how the
// feedback flips the choice to Index Nested Loops when the join column is
// correlated with the inner table's clustering.
//
//   build/examples/join_advisor

#include <cstdio>

#include "common/string_util.h"
#include "core/feedback_driver.h"
#include "sql/binder.h"
#include "workload/synthetic.h"

using namespace dpcf;

namespace {
template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}
}  // namespace

int main() {
  Database db;
  SyntheticOptions opts;
  opts.num_rows = 200'000;
  Table* t = Unwrap(BuildSyntheticTable(&db, "T", opts));
  SyntheticOptions o1 = opts;
  o1.seed = 999;
  o1.build_indexes = false;
  Table* t1 = Unwrap(BuildSyntheticTable(&db, "T1", o1));
  Unwrap(db.CreateIndex("T1_c1", "T1", std::vector<int>{kC1}, true));

  StatisticsCatalog stats;
  if (!stats.BuildAll(db.disk(), *t).ok()) return 1;
  if (!stats.BuildAll(db.disk(), *t1).ok()) return 1;

  const char* sql =
      "SELECT COUNT(T.padding) FROM T1 JOIN T ON T1.C2 = T.C2 "
      "WHERE T1.C1 < 4000";
  BoundQuery bound = Unwrap(BindSql(db, sql));
  std::printf("advising on: %s\n\n", sql);

  OptimizerHints hints;
  Optimizer opt(&db, &stats, &hints);
  std::printf("join strategies as the optimizer costs them today:\n");
  for (const JoinPlan& p : Unwrap(opt.EnumerateJoinPlans(bound.join))) {
    std::printf("  %-22s cost=%-9s est inner DPC=%s (%s)\n",
                JoinMethodName(p.method),
                FormatDouble(p.est_cost, 1).c_str(),
                FormatDouble(p.est_inner_dpc, 0).c_str(),
                p.dpc_source.c_str());
  }

  FeedbackDriver driver(&db, &stats, {});
  FeedbackOutcome out = Unwrap(driver.RunJoin(bound.join));

  std::printf("\nexecuted %s with monitoring:\n",
              out.plan_before.substr(0, out.plan_before.find('[')).c_str());
  for (const MonitorRecord& m : out.feedback) {
    std::printf("  %-28s est DPC %-8s actual DPC %-8s via %s\n",
                m.expr_text.c_str(),
                FormatDouble(m.estimated_dpc, 0).c_str(),
                FormatDouble(m.actual_dpc, 0).c_str(),
                m.mechanism.c_str());
  }
  std::printf("\nre-optimized with feedback:\n  before: %s\n  after:  %s\n",
              out.plan_before.c_str(), out.plan_after.c_str());
  std::printf("\nT = %.1f ms -> T' = %.1f ms  (SpeedUp %.1f%%, monitoring "
              "overhead %.2f%%)\n",
              out.time_before_ms, out.time_after_ms, out.speedup * 100,
              out.monitor_overhead * 100);
  std::printf(
      "\nThe bitvector filter built from the outer's join keys acted as a\n"
      "derived semi-join predicate in T's scan, counting exactly the pages\n"
      "an INL join would fetch — without ever running the INL join.\n");
  return 0;
}
