// The paper's headline loop end to end: optimize, execute with monitoring,
// inject the observed distinct page counts, re-optimize, and measure the
// speedup — on the synthetic correlation-spectrum table.
//
//   build/examples/feedback_reoptimize

#include <cstdio>

#include "common/string_util.h"
#include "core/feedback_driver.h"
#include "sql/binder.h"
#include "workload/synthetic.h"

using namespace dpcf;

namespace {
template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}
}  // namespace

int main() {
  Database db;
  SyntheticOptions opts;
  opts.num_rows = 200'000;
  Table* t = Unwrap(BuildSyntheticTable(&db, "T", opts));
  StatisticsCatalog stats;
  if (!stats.BuildAll(db.disk(), *t).ok()) return 1;

  std::printf(
      "T has %lld rows; C2 mirrors the clustering key, C5 is a random\n"
      "permutation. Same query shape, very different physics:\n\n",
      static_cast<long long>(t->row_count()));

  FeedbackDriver driver(&db, &stats, {});
  for (const char* sql :
       {"SELECT COUNT(padding) FROM T WHERE C2 < 6000",
        "SELECT COUNT(padding) FROM T WHERE C5 < 6000"}) {
    BoundQuery bound = Unwrap(BindSql(db, sql));
    driver.hints()->Clear();
    driver.store()->Clear();
    FeedbackOutcome out = Unwrap(driver.RunSingleTable(bound.single));

    std::printf("---- %s\n", sql);
    std::printf("  plan before feedback: %s\n", out.plan_before.c_str());
    for (const MonitorRecord& m : out.feedback) {
      std::printf(
          "  monitored %-18s est DPC %-8s actual DPC %-8s (%s)\n",
          m.expr_text.c_str(), FormatDouble(m.estimated_dpc, 0).c_str(),
          FormatDouble(m.actual_dpc, 0).c_str(), m.mechanism.c_str());
    }
    std::printf("  plan after feedback:  %s\n", out.plan_after.c_str());
    std::printf("  T = %.1f ms -> T' = %.1f ms   SpeedUp = %.1f%%   "
                "(monitoring overhead %.2f%%)\n\n",
                out.time_before_ms, out.time_after_ms, out.speedup * 100,
                out.monitor_overhead * 100);
  }
  std::printf(
      "C2: Yao overestimated the page count ~%dx and feedback flipped the\n"
      "plan to an index seek; C5: the estimate was already right, so the\n"
      "plan (correctly) did not change.\n",
      40);
  return 0;
}
