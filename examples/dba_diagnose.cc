// DBA diagnosis workflow (paper Section II-C): run the production query
// with monitoring on, compare the optimizer's page-count estimates with the
// observed values, inspect the clustering ratio, and print the plan hint a
// DBA (or tuning tool) would apply.
//
//   build/examples/dba_diagnose

#include <cstdio>

#include "common/string_util.h"
#include "core/clustering_ratio.h"
#include "core/monitor_manager.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "sql/binder.h"
#include "workload/realworld.h"

using namespace dpcf;

namespace {
template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}
}  // namespace

int main() {
  Database db;
  RealWorldOptions rw;
  rw.scale = 0.5;
  auto datasets = Unwrap(BuildRealWorldDatabases(&db, rw));
  Table* orders = db.GetTable("book_retailer");
  StatisticsCatalog stats;
  if (!stats.BuildAll(db.disk(), *orders).ok()) return 1;

  // The slow production query: orders of one fortnight. order_date is
  // correlated with the load order (orders arrive daily).
  const char* sql =
      "SELECT COUNT(detail) FROM book_retailer "
      "WHERE order_date >= 100 AND order_date <= 113";
  BoundQuery query = Unwrap(BindSql(db, sql));
  std::printf("diagnosing: %s\n\n", sql);

  OptimizerHints hints;
  Optimizer opt(&db, &stats, &hints);
  std::printf("candidate plans (optimizer's view):\n");
  auto paths = Unwrap(opt.EnumerateAccessPaths(query.single));
  for (const AccessPathPlan& p : paths) {
    std::printf("  %s\n", p.Describe().c_str());
  }
  AccessPathPlan chosen = Unwrap(opt.OptimizeSingleTable(query.single));
  std::printf("chosen: %s\n\n", chosen.Signature().c_str());

  // Execute with monitoring.
  if (!db.ColdCache().ok()) return 1;
  ExecContext ctx(db.buffer_pool());
  MonitorManager mm(&db);
  InstrumentedHooks hooks = Unwrap(mm.ForSingleTable(chosen, query.single));
  OperatorPtr root =
      Unwrap(BuildSingleTableExec(chosen, query.single, hooks.hooks));
  RunResult run = Unwrap(ExecutePlan(root.get(), &ctx));

  std::printf("execution feedback (est vs actual page counts):\n");
  for (MonitorRecord& m : run.stats.monitors) {
    // Attach the optimizer estimate for the same expression.
    for (const MonitoredExpr& e : hooks.entries) {
      if (e.label != m.label) continue;
      double est_rows =
          opt.cardinality().EstimateRows(*e.table, e.expr);
      m.estimated_cardinality = est_rows;
      m.estimated_dpc = opt.EstimateDpc(*e.table, e.expr, est_rows,
                                        nullptr);
      std::printf(
          "  %-45s est %-9s actual %-9s error %.1fx [%s]\n",
          m.expr_text.c_str(), FormatDouble(m.estimated_dpc, 0).c_str(),
          FormatDouble(m.actual_dpc, 0).c_str(), m.DpcErrorFactor(),
          m.mechanism.c_str());
      // Clustering ratio: where between fully-correlated and scattered
      // does this expression sit?
      ClusteringRatioResult cr = Unwrap(
          ComputeClusteringRatio(db.disk(), *e.table, e.expr));
      std::printf(
          "    clustering ratio %.3f (LB=%lld, N=%lld, UB=%lld)\n",
          cr.ratio, static_cast<long long>(cr.lower_bound),
          static_cast<long long>(cr.actual_pages),
          static_cast<long long>(cr.upper_bound));
    }
  }

  // The DBA's corrective action: inject the observed DPC and re-optimize.
  std::printf("\napplying page-count hints and re-optimizing...\n");
  for (const MonitorRecord& m : run.stats.monitors) {
    hints.SetDpc(m.label, m.actual_dpc);
  }
  AccessPathPlan fixed = Unwrap(opt.OptimizeSingleTable(query.single));
  std::printf("recommended plan: %s\n", fixed.Describe().c_str());
  if (fixed.Signature() != chosen.Signature()) {
    std::printf(
        "=> plan hint: force %s (the optimizer's Yao estimate missed the "
        "on-disk clustering by %.0fx)\n",
        fixed.Signature().c_str(),
        run.stats.monitors.empty() ? 0.0
                                   : run.stats.monitors[0].DpcErrorFactor());
  } else {
    std::printf("=> current plan is already optimal; no hint needed\n");
  }
  return 0;
}
