// Interactive shell over a pre-loaded demo database: type SQL, get the
// chosen plan, the result, and (with monitoring on) the statistics-xml
// report with actual distinct page counts. Feedback accumulates across
// statements, so re-running a query after a monitored execution shows the
// corrected plan — the paper's loop, driven by hand.
//
//   build/examples/dpcf_shell <<'SQL'
//   .tables
//   SELECT COUNT(padding) FROM T WHERE C2 < 4000
//   SELECT COUNT(padding) FROM T WHERE C2 < 4000
//   SQL

#include <cstdio>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "core/feedback_driver.h"
#include "sql/binder.h"
#include "workload/synthetic.h"

using namespace dpcf;

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  <SQL>           run SELECT COUNT(...) FROM ... [JOIN ...] [WHERE]\n"
      "  .tables         list tables and indexes\n"
      "  .plan <SQL>     show candidate plans without executing\n"
      "  .monitor on|off toggle page-count monitoring (default on)\n"
      "  .feedback       dump the feedback store\n"
      "  .help           this text\n");
}

}  // namespace

int main() {
  Database db;
  SyntheticOptions opts;
  opts.num_rows = 100'000;
  auto t = BuildSyntheticTable(&db, "T", opts);
  if (!t.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 t.status().ToString().c_str());
    return 1;
  }
  SyntheticOptions o1 = opts;
  o1.seed = 4242;
  o1.build_indexes = false;
  auto t1 = BuildSyntheticTable(&db, "T1", o1);
  if (!t1.ok()) return 1;
  if (!db.CreateIndex("T1_c1", "T1", std::vector<int>{kC1}, true).ok()) {
    return 1;
  }
  StatisticsCatalog stats;
  for (Table* table : db.catalog().Tables()) {
    if (!stats.BuildAll(db.disk(), *table).ok()) return 1;
  }
  FeedbackDriver driver(&db, &stats, {});
  bool monitor = true;

  std::printf("dpcf shell — demo db loaded (T: %s rows, T1: copy).\n",
              FormatCount((*t)->row_count()).c_str());
  PrintHelp();

  std::string line;
  while (std::printf("dpcf> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ".help") {
      PrintHelp();
      continue;
    }
    if (line == ".tables") {
      for (Table* table : db.catalog().Tables()) {
        std::printf("  %s %s — %s rows, %s pages\n",
                    table->name().c_str(),
                    table->schema().ToString().c_str(),
                    FormatCount(table->row_count()).c_str(),
                    FormatCount(table->page_count()).c_str());
      }
      for (Index* ix : db.catalog().Indexes()) {
        std::printf("  index %s on %s%s\n", ix->name().c_str(),
                    ix->table()->name().c_str(),
                    ix->is_clustered_key() ? " (clustered key)" : "");
      }
      continue;
    }
    if (line == ".feedback") {
      for (const FeedbackEntry& e : driver.store()->Entries()) {
        std::printf("  %-40s card=%-9s dpc=%-9s %s [%s]\n", e.key.c_str(),
                    FormatDouble(e.cardinality, 1).c_str(),
                    FormatDouble(e.dpc, 1).c_str(),
                    e.exact ? "exact" : "estimated", e.mechanism.c_str());
      }
      continue;
    }
    if (line.rfind(".monitor", 0) == 0) {
      monitor = line.find("on") != std::string::npos;
      std::printf("monitoring %s\n", monitor ? "on" : "off");
      continue;
    }
    bool explain_only = false;
    std::string sql = line;
    if (line.rfind(".plan ", 0) == 0) {
      explain_only = true;
      sql = line.substr(6);
    }
    auto bound = BindSql(db, sql);
    if (!bound.ok()) {
      std::printf("error: %s\n", bound.status().ToString().c_str());
      continue;
    }
    Optimizer opt(&db, &stats, driver.hints(), SimCostParams(),
                  driver.dpc_histograms());
    if (explain_only) {
      if (bound->is_join) {
        auto plans = opt.EnumerateJoinPlans(bound->join);
        if (!plans.ok()) continue;
        for (const JoinPlan& p : *plans) {
          std::printf("  %s\n", p.Describe().c_str());
        }
      } else {
        auto plans = opt.EnumerateAccessPaths(bound->single);
        if (!plans.ok()) continue;
        for (const AccessPathPlan& p : *plans) {
          std::printf("  %s\n", p.Describe().c_str());
        }
      }
      continue;
    }
    if (!monitor) {
      // Plain execution of the optimizer's choice.
      PlanMonitorHooks none;
      OperatorPtr root;
      if (bound->is_join) {
        auto plan = opt.OptimizeJoin(bound->join);
        if (!plan.ok()) continue;
        std::printf("plan: %s\n", plan->Describe().c_str());
        auto r = BuildJoinExec(*plan, bound->join, none);
        if (!r.ok()) continue;
        root = std::move(r).value();
      } else {
        auto plan = opt.OptimizeSingleTable(bound->single);
        if (!plan.ok()) continue;
        std::printf("plan: %s\n", plan->Describe().c_str());
        auto r = BuildSingleTableExec(*plan, bound->single, none);
        if (!r.ok()) continue;
        root = std::move(r).value();
      }
      if (!db.ColdCache().ok()) continue;
      ExecContext ctx(db.buffer_pool());
      auto result = ExecutePlan(root.get(), &ctx);
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
        continue;
      }
      std::printf("COUNT = %lld   (%.1f simulated ms)\n",
                  static_cast<long long>(result->output[0][0].AsInt64()),
                  result->stats.simulated_ms);
      continue;
    }
    // Monitored execution through the full feedback loop.
    auto outcome = bound->is_join ? driver.RunJoin(bound->join)
                                  : driver.RunSingleTable(bound->single);
    if (!outcome.ok()) {
      std::printf("error: %s\n", outcome.status().ToString().c_str());
      continue;
    }
    std::printf("COUNT = %lld\n",
                static_cast<long long>(outcome->count_result));
    std::printf("plan:  %s\n", outcome->plan_before.c_str());
    for (const MonitorRecord& m : outcome->feedback) {
      std::printf("  dpc %-36s est %-8s actual %-8s [%s]\n",
                  m.expr_text.c_str(),
                  FormatDouble(m.estimated_dpc, 0).c_str(),
                  FormatDouble(m.actual_dpc, 0).c_str(),
                  m.mechanism.c_str());
    }
    if (outcome->plan_changed) {
      std::printf("feedback changed the plan => %s\n",
                  outcome->plan_after.c_str());
      std::printf("T = %.1f ms -> T' = %.1f ms (SpeedUp %.1f%%)\n",
                  outcome->time_before_ms, outcome->time_after_ms,
                  outcome->speedup * 100);
    } else {
      std::printf("plan unchanged (T = %.1f ms)\n",
                  outcome->time_before_ms);
    }
  }
  std::printf("\nbye\n");
  return 0;
}
