// Quickstart: create a database, load a table, run SQL, and read the
// statistics-xml-style run report with actual distinct page counts.
//
//   build/examples/quickstart

#include <cstdio>

#include "core/monitor_manager.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "sql/binder.h"

using namespace dpcf;

namespace {
void Die(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}
}  // namespace

int main() {
  // 1. A database is a simulated disk + buffer pool + catalog.
  Database db;

  // 2. Define and load a table: orders clustered by id, with a ship_date
  //    column correlated with the load order (Example 1 in the paper).
  Schema schema({Column::Int64("id"), Column::Int64("ship_date"),
                 Column::Int64("state"), Column::Char("details", 64)});
  Table* sales = Unwrap(db.CreateTable("Sales", schema,
                                       TableOrganization::kClustered, 0));
  {
    TableBuilder builder(sales);
    Rng rng(7);
    for (int64_t i = 0; i < 50'000; ++i) {
      if (!builder
               .AddRow({Value::Int64(i), Value::Int64(i / 150),
                        Value::Int64(rng.NextInt(0, 49)),
                        Value::String("order")})
               .ok()) {
        return 1;
      }
    }
    Status st = builder.Finish();
    if (!st.ok()) Die(st);
  }
  Unwrap(db.CreateIndex("Sales_id", "Sales", std::vector<int>{0}, true));
  Unwrap(db.CreateIndex("Sales_shipdate", "Sales", std::vector<int>{1}));
  std::printf("loaded Sales: %lld rows on %u pages (%u rows/page)\n\n",
              static_cast<long long>(sales->row_count()),
              sales->page_count(), sales->rows_per_page());

  // 3. Build statistics and parse + bind a SQL query.
  StatisticsCatalog stats;
  Status st = stats.BuildAll(db.disk(), *sales);
  if (!st.ok()) Die(st);
  BoundQuery query = Unwrap(BindSql(
      db, "SELECT COUNT(details) FROM Sales WHERE ship_date < 30"));

  // 4. Optimize and show the chosen plan (with its DPC estimate).
  OptimizerHints hints;
  Optimizer opt(&db, &stats, &hints);
  AccessPathPlan plan = Unwrap(opt.OptimizeSingleTable(query.single));
  std::printf("chosen plan: %s\n\n", plan.Describe().c_str());

  // 5. Execute with page-count monitoring and print the run report.
  st = db.ColdCache();
  if (!st.ok()) Die(st);
  ExecContext ctx(db.buffer_pool());
  MonitorManager mm(&db);
  InstrumentedHooks hooks = Unwrap(mm.ForSingleTable(plan, query.single));
  OperatorPtr root =
      Unwrap(BuildSingleTableExec(plan, query.single, hooks.hooks));
  RunResult result = Unwrap(ExecutePlan(root.get(), &ctx));

  std::printf("COUNT = %lld\n\n",
              static_cast<long long>(result.output[0][0].AsInt64()));
  std::printf("%s\n", result.stats.ToXml().c_str());
  std::printf(
      "Note the PageCount elements: the optimizer's Yao estimate for\n"
      "ship_date<30 assumes random placement, but the dates are loaded in\n"
      "order — the actual distinct page count is far smaller.\n");
  return 0;
}
