// Figure 11: SpeedUp for real-world databases.
//
// 80 equality-predicate queries across the four real-world surrogates and
// the TPC-H-like lineitem date columns, run through the full feedback loop
// (accurate cardinalities injected). Paper: significant speedups on
// clustering-correlated columns.

#include <map>

#include "bench/bench_util.h"

using namespace dpcf;
using namespace dpcf::bench;

int main() {
  std::printf("== Figure 11: SpeedUp for real-world databases ==\n\n");
  DatabaseOptions db_opts;
  db_opts.buffer_pool_pages = 8192;
  Database db(db_opts);

  RealWorldOptions rw;
  rw.scale = RealWorldScale();
  auto datasets = CheckOk(BuildRealWorldDatabases(&db, rw), "realworld");

  TpchLikeOptions tpch;
  tpch.lineitem_rows = TpchRows();
  auto tables = CheckOk(BuildTpchLike(&db, tpch), "tpch");
  datasets.push_back(DatasetInfo{
      "tpch_lineitem", tables.lineitem,
      {kLShipDate, kLCommitDate, kLReceiptDate}});

  StatisticsCatalog stats;
  for (const DatasetInfo& info : datasets) {
    CheckOk(stats.BuildAll(db.disk(), *info.table), "stats");
  }

  FeedbackRunOptions options;
  // The paper optimizes each query independently; cross-query DPC-
  // histogram learning is evaluated separately (ablation_feedback_reuse).
  options.learn_dpc_histograms = false;
  FeedbackDriver driver(&db, &stats, options);

  TablePrinter table({"q#", "dataset", "predicate", "sel", "plan P",
                      "plan P'", "SpeedUp"});
  std::map<std::string, std::vector<double>> by_dataset;
  int qnum = 0, changed = 0;
  for (const DatasetInfo& info : datasets) {
    // ~5 queries per predicate column across five datasets: ~80 total.
    // Date columns get range predicates targeting the contested 1-10%
    // selectivity band (see query_gen.h for why equality-on-a-date falls
    // below it at scaled-down row counts).
    std::vector<GeneratedSingleQuery> queries;
    if (info.name == "tpch_lineitem") {
      queries = GenerateRealWorldRangeQueries(db.disk(), info.table,
                                              info.predicate_cols, 5, 0.01,
                                              0.09, /*seed=*/63);
    } else {
      queries = GenerateRealWorldQueries(db.disk(), info.table,
                                         info.predicate_cols, 5, 0.10,
                                         /*seed=*/63);
    }
    for (const auto& g : queries) {
      driver.hints()->Clear();
      driver.store()->Clear();
      FeedbackOutcome out =
          CheckOk(driver.RunSingleTable(g.query), "feedback run");
      ++qnum;
      changed += out.plan_changed;
      by_dataset[info.name].push_back(out.speedup);
      table.AddRow({std::to_string(qnum), info.name,
                    g.query.pred.ToString(info.table->schema()),
                    Pct(g.target_selectivity), ShortPlan(out.plan_before),
                    ShortPlan(out.plan_after), Pct(out.speedup)});
    }
  }
  table.Print();

  std::printf("\nPer-dataset mean speedup:\n");
  for (const auto& [name, speeds] : by_dataset) {
    double sum = 0, mx = 0;
    for (double s : speeds) {
      sum += s;
      mx = std::max(mx, s);
    }
    std::printf("  %-16s mean=%-8s max=%-8s n=%zu\n", name.c_str(),
                Pct(sum / speeds.size()).c_str(), Pct(mx).c_str(),
                speeds.size());
  }
  std::printf("\nSUMMARY fig11: %d queries, %d plans improved by feedback\n",
              qnum, changed);
  return 0;
}
