// Ablation: bitvector filter size vs page-count overestimation.
//
// The paper (Section IV): with at least as many bits as distinct outer
// join-column values the page count is exact; with fewer bits collisions
// can only overestimate. We run the Fig-8 hash-join monitoring with the
// filter swept from 2^8 to 2^21 bits (direct addressing: fewer bits than
// the key domain folds it) and report measured vs exact DPC.

#include "bench/bench_util.h"
#include "core/monitor_manager.h"

using namespace dpcf;
using namespace dpcf::bench;

int main() {
  std::printf("== Ablation: bitvector size vs DPC overestimation ==\n\n");
  SyntheticPair pair = BuildSyntheticPair(true);

  JoinQuery query;
  query.outer_table = pair.t1;
  query.outer_pred.Add(PredicateAtom::Int64(
      kC1, CmpOp::kLt, pair.t1->row_count() / 50));  // 2% outer
  query.outer_col = kC2;
  query.inner_table = pair.t;
  query.inner_col = kC2;
  query.inner_count_col = kPadding;

  OptimizerHints hints;
  Optimizer opt(pair.db.get(), &pair.stats, &hints);
  auto plans = CheckOk(opt.EnumerateJoinPlans(query), "enumerate");
  const JoinPlan* hash = nullptr;
  for (const auto& p : plans) {
    if (p.method == JoinMethod::kHashJoin) hash = &p;
  }
  if (hash == nullptr) {
    std::fprintf(stderr, "no hash join plan\n");
    return 1;
  }

  // Exact ground truth: outer keys are C2 values of the first 2% of T1
  // rows; T.C2 == clustering, so qualifying T pages are contiguous.
  ExactJoinCardinalities exact =
      CheckOk(ExactJoinCardinality(pair.db->disk(), query), "exact");
  // DPC(T, join-pred) by brute force via the semi-join rows' positions:
  // T.C2 = C1, so matching rows are those with C1 in the outer key set.
  // The outer keys span T1's first 2% — a scattered set in T1 but we need
  // T pages; compute via clustering-ratio machinery on a 1-atom proxy is
  // not possible (the key set is arbitrary), so walk T directly.
  std::printf("outer rows (= keys): %s, semi-join rows: %s\n\n",
              FormatCount(exact.join_rows).c_str(),
              FormatCount(exact.semi_join_rows).c_str());

  TablePrinter table({"bits", "bits/keys", "measured DPC", "exact DPC",
                      "overestimate", "filter bytes"});

  // Ground-truth DPC with a huge exact filter first.
  double exact_dpc = -1;
  for (uint32_t bits :
       {1u << 21, 1u << 18, 1u << 16, 1u << 14, 1u << 12, 1u << 10,
        1u << 8}) {
    MonitorOptions mopts;
    mopts.bitvector_bits = bits;
    mopts.scan_sample_fraction = 1.0;  // isolate the filter effect
    mopts.min_sampled_pages = 0;
    MonitorManager mm(pair.db.get(), mopts);

    CheckOk(pair.db->ColdCache(), "cold");
    ExecContext ctx(pair.db->buffer_pool());
    InstrumentedHooks hooks = CheckOk(mm.ForJoin(*hash, query, &ctx),
                                      "hooks");
    auto root =
        CheckOk(BuildJoinExec(*hash, query, hooks.hooks), "build");
    RunResult result = CheckOk(ExecutePlan(root.get(), &ctx), "run");

    double measured = -1;
    for (const MonitorRecord& m : result.stats.monitors) {
      if (m.label == JoinPredKey(*pair.t1, kC2, *pair.t, kC2)) {
        measured = m.actual_dpc;
      }
    }
    if (exact_dpc < 0) exact_dpc = measured;  // 2^21 > domain: exact
    double keys = static_cast<double>(exact.join_rows);
    table.AddRow({FormatCount(bits),
                  FormatDouble(bits / keys, 2),
                  FormatDouble(measured, 1), FormatDouble(exact_dpc, 1),
                  FormatDouble(measured / std::max(exact_dpc, 1.0), 2) +
                      "x",
                  FormatCount(bits / 8)});
  }
  table.Print();
  std::printf(
      "\nSUMMARY ablation_bitvector: bits >= key domain => exact; folding "
      "below the domain overestimates monotonically (paper: <1%% of table "
      "size sufficed)\n");
  return 0;
}
