// Flight-recorder overhead gate: the journal's claim is "always on, cheap
// enough for production". This bench measures it instead of asserting it.
//
// Two identical Databases run the same cold-cache morsel-parallel scans —
// one with observability.journal on (the default), one with it off — and
// the gate fails if the journal-on configuration is more than 5% slower.
// The async submission ring is on in both, so the measured path includes
// every journaled site (ring submit/dispatch/complete, backpressure,
// eviction, loading waits) rather than an idle journal. Timing is
// best-of-N to shave scheduler noise.
//
// Knobs: DPCF_BENCH_PAGES (default 2048; 1 KiB pages),
// DPCF_BENCH_READ_LAT_US (default 50), DPCF_BENCH_IO_THREADS (default 8),
// DPCF_BENCH_PREFETCH (default 64), DPCF_BENCH_REPEAT (default 3). Emits
// BENCH_obs_overhead.json; the <5% gate is disabled for tiny CI-smoke
// parameterizations, which only validate the JSON shape.

#include <chrono>
#include <string>

#include "bench/bench_util.h"
#include "exec/executor.h"
#include "exec/parallel_scan.h"
#include "obs/event_journal.h"
#include "table/catalog.h"

using namespace dpcf;
using namespace dpcf::bench;

namespace {

constexpr size_t kBenchPageSize = 1024;

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Best-of-`repeat` cold scan time of `table` on `db`.
double BestColdScanMs(Database* db, Table* table, int repeat,
                      uint32_t prefetch, int64_t expect_rows,
                      const char* what) {
  double best = 0;
  for (int r = 0; r < repeat; ++r) {
    CheckOk(db->ColdCache(), "cold cache");
    ParallelScanOptions options{/*num_threads=*/4, /*morsel_pages=*/32,
                                prefetch, /*vectorized=*/true,
                                /*adaptive_readahead=*/true};
    ParallelTableScanOp scan(table, Predicate(), {kC1}, nullptr, options);
    ExecContext ctx(db->buffer_pool());
    ctx.set_metrics(db->metrics());
    ctx.set_journal(db->journal());
    auto t0 = std::chrono::steady_clock::now();
    RunResult result = CheckOk(ExecutePlan(&scan, &ctx), what);
    const double ms = MillisSince(t0);
    if (static_cast<int64_t>(result.output.size()) != expect_rows) {
      std::fprintf(stderr, "FATAL %s: scanned %zu rows, expected %lld\n",
                   what, result.output.size(),
                   static_cast<long long>(expect_rows));
      std::exit(1);
    }
    if (r == 0 || ms < best) best = ms;
  }
  CheckIoInvariant(*db->disk()->io_stats(), what,
                   /*expect_no_prefetch=*/false);
  return best;
}

}  // namespace

int main() {
  const PageNo pages =
      static_cast<PageNo>(EnvInt("DPCF_BENCH_PAGES", 2048));
  const int64_t latency_us = EnvInt("DPCF_BENCH_READ_LAT_US", 50);
  const int io_threads =
      static_cast<int>(EnvInt("DPCF_BENCH_IO_THREADS", 8));
  const uint32_t prefetch =
      static_cast<uint32_t>(EnvInt("DPCF_BENCH_PREFETCH", 64));
  const int repeat = static_cast<int>(EnvInt("DPCF_BENCH_REPEAT", 3));
  const int64_t rows = static_cast<int64_t>(pages) * 9;

  std::printf("== Flight-recorder journal overhead: on vs off ==\n");
  std::printf(
      "pages~%u page_size=%zu read_latency=%lldus io_threads=%d "
      "prefetch=%u best-of-%d\n\n",
      pages, kBenchPageSize, static_cast<long long>(latency_us),
      io_threads, prefetch, repeat);

  double ms_on = 0, ms_off = 0;
  uint32_t actual_pages = 0;
  int64_t journal_events = 0;
  for (const bool journal_on : {false, true}) {
    DatabaseOptions db_opts;
    db_opts.page_size = kBenchPageSize;
    db_opts.buffer_pool_pages = static_cast<size_t>(pages) / 2;
    db_opts.async_io = true;
    db_opts.io_threads = io_threads;
    db_opts.observability.journal = journal_on;
    Database db(db_opts);
    SyntheticOptions opts;
    opts.num_rows = rows;
    opts.seed = 42;
    opts.build_indexes = false;
    Table* t =
        CheckOk(BuildSyntheticTable(&db, "T", opts), "build synthetic T");
    actual_pages = t->page_count();
    db.disk()->set_read_latency_us(latency_us);
    const double ms =
        BestColdScanMs(&db, t, repeat, prefetch, rows,
                       journal_on ? "journal-on" : "journal-off");
    if (journal_on) {
      ms_on = ms;
      journal_events =
          static_cast<int64_t>(db.journal()->Snapshot().size());
      if (journal_events == 0) {
        std::fprintf(stderr,
                     "FATAL: journal-on run recorded no events — the "
                     "overhead being measured is not there\n");
        return 1;
      }
    } else {
      ms_off = ms;
    }
  }

  const double overhead = ms_off > 0 ? (ms_on - ms_off) / ms_off : 0;
  TablePrinter table({"config", "cold_ms", "overhead"});
  // TablePrinter::AddRow is void; the lint matches TableBuilder's by name.
  table.AddRow(  // NOLINT(dpcf-discarded-status)
      {"journal-off", FormatDouble(ms_off, 2), "-"});
  table.AddRow(  // NOLINT(dpcf-discarded-status)
      {"journal-on", FormatDouble(ms_on, 2), Pct(overhead)});
  table.Print();

  const std::string json =
      "{\"bench\":\"obs_overhead\",\"pages\":" +
      std::to_string(actual_pages) + ",\"rows\":" + std::to_string(rows) +
      ",\"read_latency_us\":" + std::to_string(latency_us) +
      ",\"io_threads\":" + std::to_string(io_threads) +
      ",\"prefetch_window\":" + std::to_string(prefetch) +
      ",\"repeat\":" + std::to_string(repeat) +
      ",\"journal_off_ms\":" + FormatDouble(ms_off, 3) +
      ",\"journal_on_ms\":" + FormatDouble(ms_on, 3) +
      ",\"journal_events\":" + std::to_string(journal_events) +
      ",\"overhead\":" + FormatDouble(overhead, 4) + "}";
  std::printf("\nBENCH_obs_overhead.json %s\n", json.c_str());
  FILE* f = std::fopen("BENCH_obs_overhead.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }

  std::printf("SUMMARY obs_overhead: %s journal overhead on a cold "
              "async scan (gate <5%%)\n",
              Pct(overhead).c_str());
  // At smoke scale a scan finishes in microseconds and the ratio is pure
  // noise; the gate needs real work to divide by.
  if (actual_pages < 1024 || latency_us < 10) return 0;
  return overhead < 0.05 ? 0 : 1;
}
