// Ablation: feedback reuse via self-tuning DPC histograms (the paper's
// Section II-C/VI extension, implemented in core/dpc_histogram.h).
//
// One monitored query per column "teaches" the column's page density;
// subsequent queries with different bounds on the same column are then
// optimized correctly on their FIRST execution — no further monitoring.
// Compared against the exact-hint-only mode, where feedback applies solely
// to the identical expression.

#include "bench/bench_util.h"

using namespace dpcf;
using namespace dpcf::bench;

namespace {

struct ModeResult {
  int correct_first_plans = 0;
  double total_first_run_ms = 0;
};

ModeResult RunMode(SyntheticPair* pair, bool learn_histograms) {
  FeedbackRunOptions options;
  options.learn_dpc_histograms = learn_histograms;
  FeedbackDriver driver(pair->db.get(), &pair->stats, options);

  // Teach with one query per column at 2% selectivity.
  const int cols[] = {kC2, kC3, kC4};
  const int64_t n = pair->t->row_count();
  for (int col : cols) {
    SingleTableQuery teach;
    teach.table = pair->t;
    teach.count_star = true;
    teach.count_col = kPadding;
    teach.pred.Add(PredicateAtom::Int64(col, CmpOp::kLt, n / 50));
    CheckOk(driver.RunSingleTable(teach).status(), "teach");
  }

  // Evaluate: different bounds (1%, 3%, 5%) per column; measure the cost
  // of the plan chosen on first sight (no monitored re-run).
  Optimizer opt(pair->db.get(), &pair->stats, driver.hints(),
                SimCostParams(),
                learn_histograms ? driver.dpc_histograms() : nullptr);
  ModeResult out;
  for (int col : cols) {
    for (double sel : {0.01, 0.03, 0.05}) {
      SingleTableQuery q;
      q.table = pair->t;
      q.count_star = true;
      q.count_col = kPadding;
      q.pred.Add(PredicateAtom::Int64(
          col, CmpOp::kLt, static_cast<int64_t>(sel * n)));
      AccessPathPlan plan = CheckOk(opt.OptimizeSingleTable(q), "opt");
      out.correct_first_plans += plan.kind == AccessKind::kIndexSeek;

      CheckOk(pair->db->ColdCache(), "cold");
      ExecContext ctx(pair->db->buffer_pool());
      PlanMonitorHooks none;
      auto root = CheckOk(BuildSingleTableExec(plan, q, none), "build");
      RunResult run = CheckOk(ExecutePlan(root.get(), &ctx), "run");
      out.total_first_run_ms += run.stats.simulated_ms;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "== Ablation: feedback reuse via self-tuning DPC histograms ==\n\n");
  std::printf(
      "teach: 1 monitored query per column (C2/C3/C4 at 2%% sel);\n"
      "probe: 9 NEW queries (different bounds, 1/3/5%% sel), first "
      "execution only.\nThe index seek is the correct plan for 8-9 of "
      "them (C4 at 5%% is borderline:\nits window-shuffled DPC is flat in "
      "selectivity, which the proportional\ndensity model overestimates "
      "— conservatively keeping the scan).\n\n");

  TablePrinter table({"mode", "correct first plans", "total first-run ms"});
  {
    SyntheticPair pair = BuildSyntheticPair(false);
    ModeResult exact = RunMode(&pair, /*learn_histograms=*/false);
    table.AddRow({"exact-expression hints only",
                  StrFormat("%d/9", exact.correct_first_plans),
                  FormatDouble(exact.total_first_run_ms, 1)});
  }
  {
    SyntheticPair pair = BuildSyntheticPair(false);
    ModeResult learned = RunMode(&pair, /*learn_histograms=*/true);
    table.AddRow({"+ DPC histograms (learned density)",
                  StrFormat("%d/9", learned.correct_first_plans),
                  FormatDouble(learned.total_first_run_ms, 1)});
  }
  table.Print();
  std::printf(
      "\nSUMMARY ablation_feedback_reuse: exact hints only help the "
      "taught expression; learned densities transfer to new bounds on the "
      "same column\n");
  return 0;
}
