// Row-at-a-time vs vectorized predicate evaluation on the Fig-6 synthetic
// table, warm cache, at 1/4/8 scan threads and low/high selectivity.
//
// Unlike the cold-cache figure benches, this one is CPU-bound by design:
// the pool is sized to hold the whole table, a warm-up pass faults it in,
// and each configuration then runs DPCF_BENCH_PASSES timed passes, so wall
// clock measures predicate evaluation and tuple materialization, not I/O.
// The two paths are the ones the property sweep proves equivalent
// (tests/predicate_batch_test.cc); here we measure what the equivalence
// buys. A monitored pair (prefix + sampled requests, batch-fed vs per-row)
// rides along at one thread to price the ObserveBatch feed, and an
// evaluation-only "kernel" pair strips the operator scaffolding both paths
// share so the predicate-evaluation speedup itself is visible.
//
// Emits BENCH_predicate_batch.json. Exits nonzero if the vectorized kernel
// fails to reach 2x the row-at-a-time evaluation loop on the selective
// single-thread scan (gated off for tiny CI-smoke parameterizations, which
// only validate the JSON shape).

#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/monitor_manager.h"
#include "exec/executor.h"
#include "exec/parallel_scan.h"
#include "exec/predicate_kernel.h"

using namespace dpcf;
using namespace dpcf::bench;

namespace {

struct Measurement {
  const char* selectivity = "";
  int threads = 1;
  bool monitors = false;
  double row_ms = 0;
  double vec_ms = 0;
  int64_t rows_out = -1;
};

std::unique_ptr<ScanMonitorBundle> MakeBundle(Database* db, Table* t,
                                              const Predicate& pred) {
  MonitorManager mm(db);
  std::vector<ScanExprRequest> requests;
  std::vector<MonitoredExpr> entries;
  mm.SelectionRequests(t, pred, &requests, &entries);
  auto bundle = std::make_unique<ScanMonitorBundle>(
      pred, &t->schema(), /*sample_fraction=*/0.05, /*seed=*/2008);
  for (const ScanExprRequest& r : requests) {
    CheckOk(bundle->AddRequest(r), "add request");
  }
  return bundle;
}

/// `passes` timed scans of `pred`, returning the best (minimum) pass wall
/// ms and checking that every pass returns the same row count. Best-of is
/// the standard noise filter for warm-cache microbenches: scheduler
/// preemption and frequency drift only ever make a pass slower, so the
/// minimum is the most repeatable estimate of the true cost.
double TimedPasses(Database* db, Table* t, const Predicate& pred,
                   int threads, bool vectorized, bool monitors, int passes,
                   int64_t* rows_out) {
  double best_ms = 0;
  for (int pass = 0; pass < passes; ++pass) {
    ParallelScanOptions options;
    options.num_threads = threads;
    options.morsel_pages = 32;
    options.vectorized = vectorized;
    ParallelTableScanOp scan(t, pred, {kC1},
                             monitors ? MakeBundle(db, t, pred) : nullptr,
                             options);
    ExecContext ctx(db->buffer_pool());
    RunResult run = CheckOk(ExecutePlan(&scan, &ctx), "scan");
    if (pass == 0 || run.stats.wall_ms < best_ms) best_ms = run.stats.wall_ms;
    if (*rows_out < 0) *rows_out = run.stats.rows_returned;
    if (run.stats.rows_returned != *rows_out) {
      std::fprintf(stderr, "FATAL: pass changed row count\n");
      std::exit(1);
    }
  }
  return best_ms;
}

/// Evaluation-only comparison: a single-thread warm scan of every page of
/// `t` that runs nothing but the predicate — RowView + EvalLeading per row
/// vs one EvalBatch per page — and counts survivors. This is the exact
/// code the kernel replaced, with the operator scaffolding (tuple
/// materialization, morsel queue, emission) that both operator paths pay
/// identically stripped away, so the ratio is the kernel speedup itself.
/// Returns best-of-`passes` wall ms; survivor counts must agree.
double TimedKernelPasses(Database* db, Table* t, const Predicate& pred,
                         bool vectorized, int passes, int64_t* rows_out) {
  const HeapFile* file = t->file();
  const Schema* schema = &t->schema();
  const PredicateKernel kernel(pred, schema);
  const uint32_t num_atoms = static_cast<uint32_t>(pred.size());
  double best_ms = 0;
  for (int pass = 0; pass < passes; ++pass) {
    CpuStats cpu;
    RowBlock block(schema);
    std::vector<uint32_t> sel;
    int64_t survivors = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (PageNo p = 0; p < file->page_count(); ++p) {
      auto guard =
          CheckOk(db->buffer_pool()->Fetch(PageId{file->segment(), p}),
                  "fetch");
      const uint32_t rows_in_page = HeapFile::PageRowCount(guard.data());
      if (vectorized) {
        block.Reset(HeapFile::PageRows(guard.data()), rows_in_page);
        sel.resize(rows_in_page);
        survivors += kernel.EvalBatch(&block, &cpu, sel.data(),
                                      /*leading=*/nullptr);
      } else {
        for (uint32_t r = 0; r < rows_in_page; ++r) {
          // oracle: the row-at-a-time loop the kernel replaced.
          RowView row(file->RowInPage(guard.data(), static_cast<uint16_t>(r)),
                      schema);
          survivors += pred.EvalLeading(row, &cpu) == num_atoms;
        }
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (pass == 0 || ms < best_ms) best_ms = ms;
    if (*rows_out < 0) *rows_out = survivors;
    if (survivors != *rows_out) {
      std::fprintf(stderr, "FATAL: kernel pass changed survivor count\n");
      std::exit(1);
    }
  }
  return best_ms;
}

}  // namespace

int main() {
  const int passes = static_cast<int>(EnvInt("DPCF_BENCH_PASSES", 5));

  std::printf("== Row-at-a-time vs vectorized predicate evaluation ==\n");
  DatabaseOptions db_opts;
  // Pool sized to the whole table: after one warm-up pass every timed scan
  // is all buffer hits, so the row/vec delta is pure CPU.
  db_opts.buffer_pool_pages = 8192;
  Database db(db_opts);
  SyntheticOptions opts;
  opts.num_rows = SyntheticRows();
  opts.seed = 42;
  opts.build_indexes = false;
  Table* t = CheckOk(BuildSyntheticTable(&db, "T", opts), "build T");
  const int64_t rows = t->row_count();
  std::printf("synthetic T: %s rows, %s pages, passes=%d\n\n",
              FormatCount(rows).c_str(),
              FormatCount(t->page_count()).c_str(), passes);

  struct Config {
    const char* name;
    Predicate pred;
  };
  // Low: the leading atom rejects ~99% of rows, the selective case the
  // batch kernel is built for. High: ~90% of rows survive the whole
  // conjunction, the worst case for a selection vector (it never empties).
  const Config configs[] = {
      {"low", Predicate({PredicateAtom::Int64(kC3, CmpOp::kLt, rows / 100),
                         PredicateAtom::Int64(kC5, CmpOp::kGe, rows / 2)})},
      {"high", Predicate({PredicateAtom::Int64(kC3, CmpOp::kGe, rows / 10)})},
  };

  // Warm-up: fault the table into the pool once.
  {
    int64_t ignored = -1;
    TimedPasses(&db, t, configs[0].pred, 1, true, false, 1, &ignored);
  }

  TablePrinter table({"selectivity", "threads", "monitors", "row_ms",
                      "vec_ms", "speedup", "vec_rows/s"});
  std::vector<Measurement> all;
  for (const Config& config : configs) {
    for (int threads : {1, 4, 8}) {
      for (bool monitors : {false, true}) {
        if (monitors && threads != 1) continue;  // priced at 1 thread only
        Measurement m;
        m.selectivity = config.name;
        m.threads = threads;
        m.monitors = monitors;
        int64_t row_rows = -1, vec_rows = -1;
        m.row_ms = TimedPasses(&db, t, config.pred, threads,
                               /*vectorized=*/false, monitors, passes,
                               &row_rows);
        m.vec_ms = TimedPasses(&db, t, config.pred, threads,
                               /*vectorized=*/true, monitors, passes,
                               &vec_rows);
        if (row_rows != vec_rows) {
          std::fprintf(stderr, "FATAL: paths disagree on row count\n");
          return 1;
        }
        m.rows_out = vec_rows;
        table.AddRow(
            {config.name, std::to_string(threads), monitors ? "on" : "off",
             FormatDouble(m.row_ms, 1), FormatDouble(m.vec_ms, 1),
             FormatDouble(m.row_ms / m.vec_ms, 2) + "x",
             FormatCount(static_cast<int64_t>(
                 static_cast<double>(rows) / (m.vec_ms / 1000.0)))});
        all.push_back(m);
      }
    }
  }
  table.Print();

  // Evaluation-only kernel rows: the gated measurement (see
  // TimedKernelPasses). The operator rows above additionally carry tuple
  // materialization and morsel dispatch, identical on both paths, which on
  // a bandwidth-bound scan dilutes the visible ratio.
  struct KernelMeasurement {
    const char* selectivity = "";
    double row_ms = 0;
    double vec_ms = 0;
    int64_t rows_out = -1;
  };
  std::vector<KernelMeasurement> kernels;
  TablePrinter ktable(
      {"kernel-only", "row_ms", "vec_ms", "speedup", "vec_rows/s"});
  for (const Config& config : configs) {
    KernelMeasurement k;
    k.selectivity = config.name;
    int64_t row_rows = -1, vec_rows = -1;
    k.row_ms = TimedKernelPasses(&db, t, config.pred, /*vectorized=*/false,
                                 passes, &row_rows);
    k.vec_ms = TimedKernelPasses(&db, t, config.pred, /*vectorized=*/true,
                                 passes, &vec_rows);
    if (row_rows != vec_rows) {
      std::fprintf(stderr, "FATAL: kernel paths disagree on survivors\n");
      return 1;
    }
    k.rows_out = vec_rows;
    ktable.AddRow({config.name, FormatDouble(k.row_ms, 2),
                   FormatDouble(k.vec_ms, 2),
                   FormatDouble(k.row_ms / k.vec_ms, 2) + "x",
                   FormatCount(static_cast<int64_t>(
                       static_cast<double>(rows) / (k.vec_ms / 1000.0)))});
    kernels.push_back(k);
  }
  std::printf("\n");
  ktable.Print();

  double speedup_1t_low = 0;
  std::string json = "{\"bench\":\"predicate_batch\",\"rows\":" +
                     std::to_string(rows) + ",\"pages\":" +
                     std::to_string(t->page_count()) +
                     ",\"passes\":" + std::to_string(passes) + ",\"runs\":[";
  for (size_t i = 0; i < all.size(); ++i) {
    const Measurement& m = all[i];
    const double speedup = m.row_ms / m.vec_ms;
    if (std::string(m.selectivity) == "low" && m.threads == 1 &&
        !m.monitors) {
      speedup_1t_low = speedup;
    }
    if (i > 0) json += ",";
    json += std::string("{\"selectivity\":\"") + m.selectivity +
            "\",\"threads\":" + std::to_string(m.threads) +
            ",\"monitors\":" + (m.monitors ? "true" : "false") +
            ",\"row_ms\":" + FormatDouble(m.row_ms, 3) +
            ",\"vec_ms\":" + FormatDouble(m.vec_ms, 3) +
            ",\"speedup\":" + FormatDouble(speedup, 3) +
            ",\"rows_out\":" + std::to_string(m.rows_out) + "}";
  }
  json += "],\"kernel\":[";
  double kernel_speedup_low = 0;
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelMeasurement& k = kernels[i];
    const double speedup = k.row_ms / k.vec_ms;
    if (std::string(k.selectivity) == "low") kernel_speedup_low = speedup;
    if (i > 0) json += ",";
    json += std::string("{\"selectivity\":\"") + k.selectivity +
            "\",\"row_ms\":" + FormatDouble(k.row_ms, 3) +
            ",\"vec_ms\":" + FormatDouble(k.vec_ms, 3) +
            ",\"speedup\":" + FormatDouble(speedup, 3) +
            ",\"rows_out\":" + std::to_string(k.rows_out) + "}";
  }
  json += "],\"speedup_1t_low\":" + FormatDouble(speedup_1t_low, 3) +
          ",\"kernel_speedup_low\":" + FormatDouble(kernel_speedup_low, 3) +
          "}";

  std::printf("\nBENCH_predicate_batch.json %s\n", json.c_str());
  FILE* f = std::fopen("BENCH_predicate_batch.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }

  std::printf(
      "SUMMARY predicate_batch: %.2fx kernel speedup (%.2fx end-to-end "
      "operator) on the selective single-thread scan, vectorized vs "
      "row-at-a-time\n",
      kernel_speedup_low, speedup_1t_low);
  // The 2x gate is on the evaluation-only kernel measurement; the
  // end-to-end operator rows carry identical materialization/dispatch cost
  // on both paths and are reported, not gated. The gate also needs enough
  // rows for per-row call overhead to dominate timer noise; the CI smoke
  // run uses a tiny table and only validates the JSON shape.
  if (rows < 200'000) return 0;
  return kernel_speedup_low >= 2.0 ? 0 : 1;
}
