// Figure 6: SpeedUp for single-table queries on the synthetic database.
//
// 100 queries (25 per column C2..C5), selectivities uniform in 1%-10%,
// accurate cardinalities injected; SpeedUp = (T - T') / T where T' is the
// plan re-optimized with the distinct page counts obtained from execution
// feedback. Paper shape: large speedups on C2/C3/C4 (plan flips Table Scan
// -> Index Seek), near zero on C5 where Yao is already accurate.

#include <map>

#include "bench/bench_util.h"

using namespace dpcf;
using namespace dpcf::bench;

int main() {
  std::printf("== Figure 6: SpeedUp for single-table queries ==\n");
  SyntheticPair pair = BuildSyntheticPair(/*with_t1=*/false);
  std::printf("synthetic T: %s rows, %s pages\n\n",
              FormatCount(pair.t->row_count()).c_str(),
              FormatCount(pair.t->page_count()).c_str());

  auto queries = GenerateSyntheticSingleTableQueries(
      pair.t, /*per_column=*/25, 0.01, 0.10, /*seed=*/2008);

  FeedbackRunOptions options;
  // The paper optimizes each query independently; cross-query DPC-
  // histogram learning is evaluated separately (ablation_feedback_reuse).
  options.learn_dpc_histograms = false;
  // Feedback is thread-count and readahead invariant (the monitor bundles
  // are mergeable sketches), so the parallel knobs only change run time.
  options.monitor.scan_threads = ScanThreads();
  options.monitor.prefetch_pages = PrefetchPages();
  // An observability dump wants the annotated EXPLAIN ANALYZE plan, which
  // requires per-operator profiling.
  options.profile_operators = ObsDir() != nullptr;
  FeedbackDriver driver(pair.db.get(), &pair.stats, options);

  TablePrinter table({"q#", "col", "sel", "plan P", "plan P'", "T(ms)",
                      "T'(ms)", "SpeedUp"});
  std::map<int, std::vector<double>> by_col;
  std::string last_annotated_plan;
  int changed = 0;
  int advised = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const GeneratedSingleQuery& g = queries[i];
    // Fresh hints per query: each query is optimized independently, as in
    // the paper's per-query methodology.
    driver.hints()->Clear();
    driver.store()->Clear();
    FeedbackOutcome out =
        CheckOk(driver.RunSingleTable(g.query), "feedback run");
    by_col[g.column].push_back(out.speedup);
    changed += out.plan_changed;
    advised += out.reoptimization_advised;
    if (!out.annotated_plan.empty()) {
      last_annotated_plan = out.annotated_plan;
    }
    table.AddRow({std::to_string(i + 1), ColumnName(*pair.t, g.column),
                  Pct(g.target_selectivity), ShortPlan(out.plan_before),
                  ShortPlan(out.plan_after),
                  FormatDouble(out.time_before_ms, 1),
                  FormatDouble(out.time_after_ms, 1), Pct(out.speedup)});
  }
  table.Print();

  std::printf("\nPer-column mean speedup (paper: high C2..C4, ~0 C5):\n");
  for (const auto& [col, speeds] : by_col) {
    double sum = 0, mx = 0;
    for (double s : speeds) {
      sum += s;
      mx = std::max(mx, s);
    }
    std::printf("  %-3s mean=%-8s max=%s\n", ColumnName(*pair.t, col),
                Pct(sum / speeds.size()).c_str(), Pct(mx).c_str());
  }
  std::printf("\nEstimation error by (table, mechanism):\n%s",
              driver.error_tracker()->Report().c_str());

  std::printf("\nSUMMARY fig6: %d/%zu plans changed by feedback, "
              "%d runs with re-optimization advised (%zu drift alerts "
              "active)\n",
              changed, queries.size(), advised,
              driver.drift_monitor()->ActiveAlerts().size());
  CheckIoInvariant(*pair.db->disk()->io_stats(), "fig6 accounting",
                   /*expect_no_prefetch=*/PrefetchPages() == 0);
  MaybeDumpObservability(pair.db.get(), last_annotated_plan,
                         driver.error_tracker()->Report());
  return 0;
}
