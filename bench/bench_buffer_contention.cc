// Buffer-pool fetch throughput under contention: monolithic (1 shard, disk
// read under the latch — the pre-sharding pool) vs sharded (8 shards,
// latch-free miss I/O), cold and warm, at 1/2/4/8 fetcher threads and equal
// capacity.
//
// The cold phase is the paper's methodology (ColdReset before every measured
// run): every fetch is a miss, so it measures exactly the path the shard +
// LOADING protocol was built for. A simulated per-read device latency
// (DPCF_BENCH_READ_LAT_US, slept outside any latch) stands in for the disk:
// under the monolithic pool the latch serializes the sleeps, so cold
// throughput is flat in the thread count; with latch-free miss I/O the
// sleeps overlap and throughput scales — including on a 1-core container,
// since sleeping threads do not need a CPU. Wall clock is therefore the
// honest metric here, unlike CPU-bound benches.
//
// Knobs: DPCF_BENCH_PAGES (default 4096), DPCF_BENCH_READ_LAT_US (default
// 50), DPCF_BENCH_WARM_PASSES (default 4). Emits
// BENCH_buffer_contention.json; exits nonzero if the sharded pool fails to
// reach 2x monolithic cold 4-thread throughput (gated off for the tiny
// CI-smoke parameterizations, which only validate the JSON).

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "storage/buffer_pool.h"

using namespace dpcf;
using namespace dpcf::bench;

namespace {

constexpr size_t kBenchPageSize = 1024;

struct PhaseResult {
  double cold_ms = 0;
  double cold_pages_per_s = 0;
  double warm_ms = 0;
  double warm_pages_per_s = 0;
};

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Each of `threads` workers fetches a contiguous chunk of [0, pages) in
/// order, `passes` times, verifying the page stamp. Returns elapsed ms.
double FetchAll(BufferPool& pool, SegmentId seg, PageNo pages, int threads,
                int passes) {
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  const PageNo chunk = (pages + static_cast<PageNo>(threads) - 1) /
                       static_cast<PageNo>(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const PageNo begin = static_cast<PageNo>(t) * chunk;
      const PageNo end = std::min<PageNo>(pages, begin + chunk);
      for (int pass = 0; pass < passes; ++pass) {
        for (PageNo p = begin; p < end; ++p) {
          auto guard = pool.Fetch(PageId{seg, p});
          if (!guard.ok()) {
            ++failures;
            return;
          }
          int64_t stamp;
          std::memcpy(&stamp, guard->data(), sizeof(stamp));
          if (stamp != 0x5eed0000 + p) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  if (failures.load() != 0) {
    std::fprintf(stderr, "FATAL: fetch failure under contention\n");
    std::exit(1);
  }
  return MillisSince(t0);
}

PhaseResult RunConfig(DiskManager& disk, BufferPool& pool, SegmentId seg,
                      PageNo pages, int threads, int warm_passes) {
  PhaseResult r;
  CheckOk(pool.ColdReset(), "cold reset");
  disk.io_stats()->Reset();

  r.cold_ms = FetchAll(pool, seg, pages, threads, /*passes=*/1);
  r.cold_pages_per_s = static_cast<double>(pages) / (r.cold_ms / 1000.0);

  // The sharded pool must reproduce the monolithic counters exactly: a
  // cold pass over distinct pages is all misses, no duplicated loads.
  // (Exact even if a shard evicted mid-pass: each page is fetched once.)
  IoStats* io = disk.io_stats();
  if (static_cast<int64_t>(io->logical_reads) != pages ||
      io->physical_reads() != pages ||
      static_cast<int64_t>(io->buffer_hits) != 0 ||
      static_cast<int64_t>(io->prefetch_reads) != 0) {
    std::fprintf(stderr, "FATAL: cold-pass accounting drifted: %s\n",
                 io->ToString().c_str());
    std::exit(1);
  }
  // With the 2x capacity headroom no shard quota should have overflowed;
  // if one did (possible only for hand-picked DPCF_BENCH_PAGES values whose
  // hashed shard distribution is extreme), the warm phase is no longer
  // deterministically all-hits, so only the accounting invariant applies.
  const bool fully_resident = pool.cached_pages() == static_cast<size_t>(pages);

  r.warm_ms = FetchAll(pool, seg, pages, threads, warm_passes);
  r.warm_pages_per_s = static_cast<double>(pages) * warm_passes /
                       (r.warm_ms / 1000.0);
  const int64_t warm_fetches = static_cast<int64_t>(pages) * warm_passes;
  const bool warm_exact =
      static_cast<int64_t>(io->buffer_hits) == warm_fetches &&
      io->physical_reads() == pages;
  const bool invariant_holds =
      static_cast<int64_t>(io->logical_reads) ==
      static_cast<int64_t>(io->buffer_hits) + io->physical_reads();
  if ((fully_resident && !warm_exact) || !invariant_holds) {
    std::fprintf(stderr, "FATAL: warm-pass accounting drifted: %s\n",
                 io->ToString().c_str());
    std::exit(1);
  }
  return r;
}

}  // namespace

int main() {
  const PageNo pages =
      static_cast<PageNo>(EnvInt("DPCF_BENCH_PAGES", 4096));
  const int64_t latency_us = EnvInt("DPCF_BENCH_READ_LAT_US", 50);
  const int warm_passes =
      static_cast<int>(EnvInt("DPCF_BENCH_WARM_PASSES", 4));

  std::printf("== Buffer-pool fetch throughput under contention ==\n");
  std::printf("pages=%u page_size=%zu read_latency=%lldus warm_passes=%d\n\n",
              pages, kBenchPageSize,
              static_cast<long long>(latency_us), warm_passes);

  DiskManager disk(kBenchPageSize);
  SegmentId seg = disk.CreateSegment("bench");
  for (PageNo p = 0; p < pages; ++p) {
    disk.AllocatePage(seg);
    int64_t stamp = 0x5eed0000 + p;
    std::memcpy(disk.RawPage(PageId{seg, p}), &stamp, sizeof(stamp));
  }
  disk.set_read_latency_us(latency_us);

  struct Mode {
    const char* name;
    BufferPoolOptions options;
  };
  const Mode modes[] = {
      {"monolithic", BufferPoolOptions{1, /*serialize_miss_io=*/true}},
      {"sharded", BufferPoolOptions{8, /*serialize_miss_io=*/false}},
  };
  const int thread_counts[] = {1, 2, 4, 8};

  TablePrinter table({"mode", "shards", "threads", "cold_ms", "cold_pages/s",
                      "warm_ms", "warm_pages/s"});
  // results[mode][thread index]
  std::vector<std::vector<PhaseResult>> results;
  std::string json = "{\"bench\":\"buffer_contention\",\"pages\":" +
                     std::to_string(pages) +
                     ",\"capacity\":" + std::to_string(pages * 2) +
                     ",\"read_latency_us\":" + std::to_string(latency_us) +
                     ",\"warm_passes\":" + std::to_string(warm_passes) +
                     ",\"modes\":[";
  for (size_t mi = 0; mi < 2; ++mi) {
    const Mode& mode = modes[mi];
    // Equal capacity in both modes. The 2x headroom over the working set
    // absorbs the binomial skew of hashed shard assignment (mean pages/8
    // per shard, but individual shards routinely run ~2-3 sigma over), so
    // every page stays resident after the cold pass and the warm phase is
    // deterministically all hits in both modes.
    BufferPool pool(&disk, static_cast<size_t>(pages) * 2, mode.options);
    results.emplace_back();
    if (mi > 0) json += ",";
    json += std::string("{\"mode\":\"") + mode.name +
            "\",\"shards\":" + std::to_string(pool.num_shards()) +
            ",\"serialize_miss_io\":" +
            (mode.options.serialize_miss_io ? "true" : "false") +
            ",\"runs\":[";
    for (size_t ti = 0; ti < 4; ++ti) {
      const int threads = thread_counts[ti];
      PhaseResult r =
          RunConfig(disk, pool, seg, pages, threads, warm_passes);
      results.back().push_back(r);
      table.AddRow({mode.name, std::to_string(pool.num_shards()),
                    std::to_string(threads), FormatDouble(r.cold_ms, 1),
                    FormatCount(static_cast<int64_t>(r.cold_pages_per_s)),
                    FormatDouble(r.warm_ms, 1),
                    FormatCount(static_cast<int64_t>(r.warm_pages_per_s))});
      if (ti > 0) json += ",";
      json += "{\"threads\":" + std::to_string(threads) +
              ",\"cold_ms\":" + FormatDouble(r.cold_ms, 3) +
              ",\"cold_pages_per_s\":" +
              FormatDouble(r.cold_pages_per_s, 1) +
              ",\"warm_ms\":" + FormatDouble(r.warm_ms, 3) +
              ",\"warm_pages_per_s\":" +
              FormatDouble(r.warm_pages_per_s, 1) + "}";
    }
    json += "]}";
  }
  table.Print();

  const double cold_speedup_4t =
      results[1][2].cold_pages_per_s / results[0][2].cold_pages_per_s;
  const double cold_speedup_8t =
      results[1][3].cold_pages_per_s / results[0][3].cold_pages_per_s;
  json += "],\"cold_speedup_4t\":" + FormatDouble(cold_speedup_4t, 3) +
          ",\"cold_speedup_8t\":" + FormatDouble(cold_speedup_8t, 3) + "}";

  std::printf("\nBENCH_buffer_contention.json %s\n", json.c_str());
  FILE* f = std::fopen("BENCH_buffer_contention.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }

  std::printf("SUMMARY buffer_contention: %.2fx cold 4-thread fetch "
              "throughput, sharded vs monolithic\n", cold_speedup_4t);
  // The 2x gate needs enough pages for the per-read latency to dominate
  // thread startup, and a real latency to overlap; the CI smoke run uses
  // tiny parameters and only validates the JSON shape.
  if (pages < 1024 || latency_us < 10) return 0;
  return cold_speedup_4t >= 2.0 ? 0 : 1;
}
