// Micro-benchmarks (google-benchmark) for the monitoring primitives on the
// storage-engine hot path: PID hashing, linear-counter adds, bitvector
// probes, predicate atom evaluation with/without short-circuiting, and a
// full scan with and without a monitor bundle.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/hash.h"
#include "core/bitvector_filter.h"
#include "core/dpsample.h"
#include "core/linear_counter.h"
#include "exec/executor.h"
#include "exec/scan_ops.h"
#include "workload/synthetic.h"

namespace dpcf {
namespace {

void BM_Mix64(benchmark::State& state) {
  uint64_t x = 0x12345;
  for (auto _ : state) {
    x = Mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_LinearCounterAdd(benchmark::State& state) {
  LinearCounter counter(static_cast<uint32_t>(state.range(0)));
  uint64_t pid = 1;
  for (auto _ : state) {
    counter.Add(pid++);
  }
  benchmark::DoNotOptimize(counter.BitsSet());
}
BENCHMARK(BM_LinearCounterAdd)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BitvectorProbe(benchmark::State& state) {
  BitvectorFilter filter(1 << 20, 0,
                         state.range(0) ? BitvectorMode::kHashed
                                        : BitvectorMode::kDirect);
  for (int64_t k = 0; k < 10'000; ++k) filter.AddKey(k * 3);
  int64_t probe = 0;
  bool acc = false;
  for (auto _ : state) {
    acc ^= filter.MayContain(probe++);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_BitvectorProbe)->Arg(0)->Arg(1);

class ScanFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (db != nullptr) return;
    db_holder = std::make_unique<Database>([] {
      DatabaseOptions o;
      o.page_size = kDefaultPageSize;
      o.buffer_pool_pages = 4096;
      return o;
    }());
    db = db_holder.get();
    SyntheticOptions opts;
    opts.num_rows = 100'000;
    opts.build_indexes = false;
    auto built = BuildSyntheticTable(db, "T", opts);
    if (built.ok()) t = *built;
  }
  static std::unique_ptr<Database> db_holder;
  static Database* db;
  static Table* t;
};
std::unique_ptr<Database> ScanFixture::db_holder;
Database* ScanFixture::db = nullptr;
Table* ScanFixture::t = nullptr;

BENCHMARK_F(ScanFixture, ScanUnmonitored)(benchmark::State& state) {
  Predicate pred({PredicateAtom::Int64(kC3, CmpOp::kLt, 5000)});
  for (auto _ : state) {
    ExecContext ctx(db->buffer_pool());
    TableScanOp scan(t, pred, {});
    auto result = ExecutePlan(&scan, &ctx);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() * t->row_count());
}

BENCHMARK_F(ScanFixture, ScanWithPrefixMonitor)(benchmark::State& state) {
  Predicate pred({PredicateAtom::Int64(kC3, CmpOp::kLt, 5000)});
  for (auto _ : state) {
    ExecContext ctx(db->buffer_pool());
    auto bundle = std::make_unique<ScanMonitorBundle>(pred, &t->schema(),
                                                      0.01, 7);
    ScanExprRequest req;
    req.label = "x";
    req.expr = pred;
    (void)bundle->AddRequest(req);
    TableScanOp scan(t, pred, {}, std::move(bundle));
    auto result = ExecutePlan(&scan, &ctx);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() * t->row_count());
}

BENCHMARK_F(ScanFixture, ScanWithSampledMonitor)(benchmark::State& state) {
  Predicate pred({PredicateAtom::Int64(kC3, CmpOp::kLt, 5000)});
  Predicate other({PredicateAtom::Int64(kC4, CmpOp::kLt, 5000)});
  for (auto _ : state) {
    ExecContext ctx(db->buffer_pool());
    auto bundle = std::make_unique<ScanMonitorBundle>(pred, &t->schema(),
                                                      0.01, 7);
    ScanExprRequest req;
    req.label = "x";
    req.expr = other;  // non-prefix: DPSample path
    (void)bundle->AddRequest(req);
    TableScanOp scan(t, pred, {}, std::move(bundle));
    auto result = ExecutePlan(&scan, &ctx);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() * t->row_count());
}

}  // namespace
}  // namespace dpcf

BENCHMARK_MAIN();
