// Shared helpers for the figure-reproduction benchmark binaries.
//
// Scale knobs (environment variables):
//   DPCF_ROWS         synthetic table rows           (default 400000)
//   DPCF_SCALE        real-world dataset scale       (default 1.0)
//   DPCF_TPCH_ROWS    tpch-like lineitem rows        (default 240000)
//   DPCF_SCAN_THREADS morsel workers for monitored scans (default 1)
//   DPCF_PREFETCH     readahead window in pages      (default 0 = off)
//   DPCF_ASYNC_IO     1 routes misses/readahead through the async
//                     submission ring                (default 0 = sync)
//   DPCF_OBS_DIR      when set, benches that support it enable tracing and
//                     dump metrics.prom / metrics.json / trace.json /
//                     journal.json / explain.txt there (validated by
//                     tools/check_observability.py)
// Each binary prints the series of one paper table/figure as an aligned
// text table plus a one-line SUMMARY, so `for b in build/bench/*; do $b;
// done` regenerates the whole evaluation.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/feedback_driver.h"
#include "sql/binder.h"
#include "storage/io_stats.h"
#include "workload/query_gen.h"
#include "workload/realworld.h"
#include "workload/synthetic.h"
#include "workload/tpch_like.h"

namespace dpcf::bench {

inline int64_t EnvInt(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  return v == nullptr ? def : std::atoll(v);
}

inline double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  return v == nullptr ? def : std::atof(v);
}

inline int64_t SyntheticRows() { return EnvInt("DPCF_ROWS", 400'000); }
inline double RealWorldScale() { return EnvDouble("DPCF_SCALE", 1.0); }
inline int64_t TpchRows() { return EnvInt("DPCF_TPCH_ROWS", 240'000); }
inline int ScanThreads() {
  return static_cast<int>(EnvInt("DPCF_SCAN_THREADS", 1));
}
inline uint32_t PrefetchPages() {
  return static_cast<uint32_t>(EnvInt("DPCF_PREFETCH", 0));
}
inline bool AsyncIo() { return EnvInt("DPCF_ASYNC_IO", 0) != 0; }
/// Observability dump directory; nullptr when DPCF_OBS_DIR is unset.
inline const char* ObsDir() { return std::getenv("DPCF_OBS_DIR"); }

/// Dies on error — benches have no meaningful recovery.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// Exact I/O-accounting invariant for figure benches: every logical read
/// was a hit or exactly one physical read, and no prefetched load was
/// demanded more often than it was issued (prefetch_hits <= prefetch_reads
/// at every quiescent point). With `expect_no_prefetch` (the default —
/// serial figure runs never issue readahead) any prefetch charge at all is
/// fatal. Dies on violation, so a figure can never be produced from
/// counters the sharded pool silently perturbed relative to the
/// pre-sharding (monolithic) values.
inline void CheckIoInvariant(const IoStats& io, const char* what,
                             bool expect_no_prefetch = true) {
  const bool balanced =
      static_cast<int64_t>(io.logical_reads) ==
      static_cast<int64_t>(io.buffer_hits) + io.physical_reads();
  const bool prefetch_ok =
      static_cast<int64_t>(io.prefetch_hits) <=
          static_cast<int64_t>(io.prefetch_reads) &&
      (!expect_no_prefetch ||
       static_cast<int64_t>(io.prefetch_reads) == 0);
  if (!balanced || !prefetch_ok) {
    std::fprintf(stderr, "FATAL %s: inconsistent IoStats %s\n", what,
                 io.ToString().c_str());
    std::exit(1);
  }
}

/// The synthetic pair: T (all indexes) and T1 (independent permutations,
/// clustered-key index only), as the paper's join experiments require.
struct SyntheticPair {
  std::unique_ptr<Database> db;
  Table* t = nullptr;
  Table* t1 = nullptr;
  StatisticsCatalog stats;
};

inline SyntheticPair BuildSyntheticPair(bool with_t1) {
  SyntheticPair out;
  DatabaseOptions db_opts;
  db_opts.buffer_pool_pages = 4096;
  // An observability dump was requested: record trace events from the
  // start so the dump covers the whole bench, not just the final query.
  db_opts.observability.tracing = ObsDir() != nullptr;
  db_opts.async_io = AsyncIo();
  out.db = std::make_unique<Database>(db_opts);
  SyntheticOptions opts;
  opts.num_rows = SyntheticRows();
  opts.seed = 42;
  out.t = CheckOk(BuildSyntheticTable(out.db.get(), "T", opts),
                  "build synthetic T");
  CheckOk(out.stats.BuildAll(out.db->disk(), *out.t), "stats T");
  if (with_t1) {
    SyntheticOptions o1 = opts;
    o1.seed = 4242;  // independent permutations (see DESIGN.md)
    o1.build_indexes = false;
    out.t1 = CheckOk(BuildSyntheticTable(out.db.get(), "T1", o1),
                     "build synthetic T1");
    CheckOk(out.db->CreateIndex("T1_c1", "T1", std::vector<int>{kC1}, true)
                .status(),
            "T1 clustered index");
    CheckOk(out.stats.BuildAll(out.db->disk(), *out.t1), "stats T1");
  }
  return out;
}

/// Writes `text` to `dir`/`file`, dying on I/O failure (like CheckOk: the
/// dump is the point of an observability run, so a half-written one must
/// not look like success).
inline void WriteFileOrDie(const std::string& dir, const char* file,
                           const std::string& text) {
  const std::string path = dir + "/" + file;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr ||
      std::fwrite(text.data(), 1, text.size(), f) != text.size() ||
      std::fclose(f) != 0) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
}

/// When DPCF_OBS_DIR is set, dumps the Database's observability state
/// there: metrics.prom (Prometheus text), metrics.json, trace.json
/// (chrome://tracing / Perfetto), journal.json (flight-recorder events),
/// and explain.txt (`annotated_plan` plus `error_report`, typically
/// FeedbackOutcome::annotated_plan and the driver's
/// EstimationErrorTracker Report()). The directory must already exist.
/// No-op when the variable is unset.
inline void MaybeDumpObservability(Database* db,
                                   const std::string& annotated_plan,
                                   const std::string& error_report) {
  const char* dir = ObsDir();
  if (dir == nullptr) return;
  WriteFileOrDie(dir, "metrics.prom", db->metrics()->PrometheusText());
  WriteFileOrDie(dir, "metrics.json", db->metrics()->ToJson());
  WriteFileOrDie(dir, "trace.json", db->trace()->ToJson());
  WriteFileOrDie(dir, "journal.json",
                 db->journal() != nullptr
                     ? db->journal()->ToJson()
                     : std::string("{\"capacity_per_thread\": 0, "
                                   "\"threads\": 0, \"dropped_torn\": 0, "
                                   "\"dropped_overwritten\": 0, "
                                   "\"events\": []}\n"));
  WriteFileOrDie(dir, "explain.txt",
                 annotated_plan + "\n" + error_report);
  std::printf("observability dump written to %s\n", dir);
}

/// Aligned text-table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::string line;
      for (size_t c = 0; c < row.size(); ++c) {
        line += row[c];
        line.append(width[c] - row[c].size() + 2, ' ');
      }
      std::printf("%s\n", line.c_str());
    };
    print_row(headers_);
    size_t total = 2 * headers_.size();
    for (size_t w : width) total += w;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Pct(double fraction) {
  return FormatDouble(fraction * 100.0, 2) + "%";
}

inline const char* ColumnName(const Table& t, int col) {
  return t.schema().column(static_cast<size_t>(col)).name.c_str();
}

/// Short plan label for figure rows ("TableScan", "IndexSeek(T_c3)", ...).
/// Access-path Describe() strings look like "Kind(table, index[lo..hi])
/// ..."; the second comma token is the index name.
inline std::string ShortPlan(const std::string& describe) {
  size_t cut = describe.find_first_of("([");
  if (cut == std::string::npos) return describe;
  std::string kind = describe.substr(0, cut);
  if (kind == "IndexSeek" || kind == "IndexNestedLoopsJoin") {
    size_t comma = describe.find(", ", cut);
    size_t ix = comma == std::string::npos
                    ? describe.find(" via ", cut)
                    : comma + 2;
    if (comma == std::string::npos && ix != std::string::npos) ix += 5;
    if (ix != std::string::npos) {
      size_t end = describe.find_first_of("[,) ", ix);
      if (end != std::string::npos && end > ix) {
        return kind + "(" + describe.substr(ix, end - ix) + ")";
      }
    }
  }
  return kind;
}

}  // namespace dpcf::bench
