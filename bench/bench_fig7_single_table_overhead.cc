// Figure 7: monitoring overheads for the single-table workload.
//
// For each Fig-6 query, the chosen plan is executed with and without the
// page-count monitors; overhead = (T_monitored - T) / T in simulated time
// (wall-clock of the in-process run is reported alongside). Paper: < 2%
// for most queries.

#include "bench/bench_util.h"
#include "core/monitor_manager.h"

using namespace dpcf;
using namespace dpcf::bench;

int main() {
  std::printf("== Figure 7: monitoring overhead, single-table queries ==\n\n");
  SyntheticPair pair = BuildSyntheticPair(false);
  auto queries = GenerateSyntheticSingleTableQueries(pair.t, 25, 0.01, 0.10,
                                                     2008);

  OptimizerHints hints;
  Optimizer opt(pair.db.get(), &pair.stats, &hints);
  MonitorManager mm(pair.db.get());

  TablePrinter table({"q#", "col", "sel", "plan", "sim overhead",
                      "wall overhead", "monitored exprs"});
  double worst = 0, sum = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const GeneratedSingleQuery& g = queries[i];
    AccessPathPlan plan =
        CheckOk(opt.OptimizeSingleTable(g.query), "optimize");

    CheckOk(pair.db->ColdCache(), "cold");
    ExecContext ctx_plain(pair.db->buffer_pool());
    PlanMonitorHooks no_hooks;
    auto plain_root = CheckOk(BuildSingleTableExec(plan, g.query, no_hooks),
                              "build plain");
    RunResult plain =
        CheckOk(ExecutePlan(plain_root.get(), &ctx_plain), "run plain");

    CheckOk(pair.db->ColdCache(), "cold");
    ExecContext ctx_mon(pair.db->buffer_pool());
    InstrumentedHooks hooks =
        CheckOk(mm.ForSingleTable(plan, g.query), "hooks");
    auto mon_root = CheckOk(
        BuildSingleTableExec(plan, g.query, hooks.hooks), "build monitored");
    RunResult monitored =
        CheckOk(ExecutePlan(mon_root.get(), &ctx_mon), "run monitored");

    double sim_overhead =
        (monitored.stats.simulated_ms - plain.stats.simulated_ms) /
        plain.stats.simulated_ms;
    double wall_overhead =
        (monitored.stats.wall_ms - plain.stats.wall_ms) /
        std::max(plain.stats.wall_ms, 1e-9);
    worst = std::max(worst, sim_overhead);
    sum += sim_overhead;
    table.AddRow({std::to_string(i + 1), ColumnName(*pair.t, g.column),
                  Pct(g.target_selectivity), ShortPlan(plan.Describe()),
                  Pct(sim_overhead), Pct(wall_overhead),
                  std::to_string(monitored.stats.monitors.size())});
  }
  table.Print();
  std::printf(
      "\nSUMMARY fig7: mean sim overhead %s, max %s (paper: <2%% for most "
      "queries)\n",
      Pct(sum / queries.size()).c_str(), Pct(worst).c_str());
  CheckIoInvariant(*pair.db->disk()->io_stats(), "fig7 accounting");
  return 0;
}
