// Cold-cache scan throughput: synchronous miss I/O vs the asynchronous
// submission ring, with a static vs adaptive readahead window.
//
// The scan is the paper's cold-cache full table scan (ColdCache() before
// every measured run), lowered to the morsel-parallel operator. In sync
// mode every miss sleeps the simulated device latency on the thread that
// took it, so a 4-thread scan overlaps at most 4 demand reads plus the
// one readahead thread's serial Prefetch loop. In async mode the
// readahead batches land on the submission ring and DPCF_BENCH_IO_THREADS
// completion workers sleep the latency concurrently — the simulated
// device finally has a queue depth, and cold throughput scales with it
// rather than with the scan thread count. The adaptive mode additionally
// lets the controller (exec/readahead.h) pick the window from the live
// prefetch-hit ratio instead of trusting DPCF_BENCH_PREFETCH.
//
// Knobs: DPCF_BENCH_PAGES (default 2048; 1 KiB pages),
// DPCF_BENCH_READ_LAT_US (default 50), DPCF_BENCH_IO_THREADS (default
// 16), DPCF_BENCH_PREFETCH (static window, default 64). Emits
// BENCH_async_io.json; exits nonzero if async-adaptive fails to reach 2x
// the sync cold 4-thread throughput (gated off for tiny CI-smoke
// parameterizations, which only validate the JSON shape).

#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/executor.h"
#include "exec/parallel_scan.h"
#include "table/catalog.h"

using namespace dpcf;
using namespace dpcf::bench;

namespace {

constexpr size_t kBenchPageSize = 1024;

struct RunStats {
  double cold_ms = 0;
  double cold_pages_per_s = 0;
  int64_t prefetch_reads = 0;
  int64_t prefetch_hits = 0;
  int64_t prefetch_rejected = 0;
  double final_window = 0;
};

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Mode {
  const char* name;
  bool async_io;
  bool adaptive;
};

/// One cold full-scan of `table` with the given lowering; verifies the
/// row count and the exact accounting invariant before reporting time.
RunStats RunConfig(Database* db, Table* table, int threads,
                   uint32_t prefetch, bool adaptive, int64_t expect_rows,
                   const char* what) {
  CheckOk(db->ColdCache(), "cold cache");
  ParallelScanOptions options{threads, /*morsel_pages=*/32, prefetch,
                              /*vectorized=*/true, adaptive};
  ParallelTableScanOp scan(table, Predicate(), {kC1}, nullptr, options);
  ExecContext ctx(db->buffer_pool());
  ctx.set_metrics(db->metrics());  // wires the readahead-window gauge

  auto t0 = std::chrono::steady_clock::now();
  RunResult result = CheckOk(ExecutePlan(&scan, &ctx), what);
  RunStats r;
  r.cold_ms = MillisSince(t0);

  if (static_cast<int64_t>(result.output.size()) != expect_rows) {
    std::fprintf(stderr, "FATAL %s: scanned %zu rows, expected %lld\n",
                 what, result.output.size(),
                 static_cast<long long>(expect_rows));
    std::exit(1);
  }
  const IoStats& io = *db->disk()->io_stats();
  CheckIoInvariant(io, what, /*expect_no_prefetch=*/false);
  const uint32_t pages = table->page_count();
  r.cold_pages_per_s = static_cast<double>(pages) / (r.cold_ms / 1000.0);
  r.prefetch_reads = io.prefetch_reads;
  r.prefetch_hits = io.prefetch_hits;
  r.prefetch_rejected = io.prefetch_rejected;
  r.final_window = db->metrics()
                       ->GetGauge("scan_readahead_window_pages",
                                  "Current readahead window")
                       ->value();
  return r;
}

}  // namespace

int main() {
  const PageNo pages =
      static_cast<PageNo>(EnvInt("DPCF_BENCH_PAGES", 2048));
  const int64_t latency_us = EnvInt("DPCF_BENCH_READ_LAT_US", 50);
  const int io_threads =
      static_cast<int>(EnvInt("DPCF_BENCH_IO_THREADS", 16));
  const uint32_t prefetch =
      static_cast<uint32_t>(EnvInt("DPCF_BENCH_PREFETCH", 64));

  // ~9 fixed-width 100-byte rows fit a 1 KiB heap page; the JSON reports
  // the page count the table actually came out to.
  const int64_t rows = static_cast<int64_t>(pages) * 9;

  std::printf("== Cold scan: sync vs async submission ring ==\n");
  std::printf(
      "pages~%u page_size=%zu read_latency=%lldus io_threads=%d "
      "prefetch=%u\n\n",
      pages, kBenchPageSize, static_cast<long long>(latency_us),
      io_threads, prefetch);

  const Mode modes[] = {
      {"sync", false, false},
      {"async-static", true, false},
      {"async-adaptive", true, true},
  };
  const int thread_counts[] = {1, 4, 8};

  TablePrinter table({"mode", "threads", "cold_ms", "cold_pages/s",
                      "pf_reads", "pf_hits", "pf_rej", "window"});
  // results[mode][thread index]
  std::vector<std::vector<RunStats>> results;
  std::string json;
  uint32_t actual_pages = 0;
  for (size_t mi = 0; mi < 3; ++mi) {
    const Mode& mode = modes[mi];
    DatabaseOptions db_opts;
    db_opts.page_size = kBenchPageSize;
    db_opts.buffer_pool_pages = static_cast<size_t>(pages) / 2;
    db_opts.async_io = mode.async_io;
    db_opts.io_threads = io_threads;
    Database db(db_opts);
    SyntheticOptions opts;
    opts.num_rows = rows;
    opts.seed = 42;
    opts.build_indexes = false;  // the scan is the workload
    Table* t = CheckOk(BuildSyntheticTable(&db, "T", opts),
                       "build synthetic T");
    actual_pages = t->page_count();
    db.disk()->set_read_latency_us(latency_us);

    results.emplace_back();
    if (mi > 0) json += ",";
    json += std::string("{\"mode\":\"") + mode.name +
            "\",\"async_io\":" + (mode.async_io ? "true" : "false") +
            ",\"adaptive\":" + (mode.adaptive ? "true" : "false") +
            ",\"runs\":[";
    for (size_t ti = 0; ti < 3; ++ti) {
      const int threads = thread_counts[ti];
      const std::string what =
          std::string(mode.name) + " @" + std::to_string(threads) + "t";
      RunStats r = RunConfig(&db, t, threads, prefetch, mode.adaptive,
                             rows, what.c_str());
      results.back().push_back(r);
      table.AddRow({mode.name, std::to_string(threads),
                    FormatDouble(r.cold_ms, 1),
                    FormatCount(static_cast<int64_t>(r.cold_pages_per_s)),
                    std::to_string(r.prefetch_reads),
                    std::to_string(r.prefetch_hits),
                    std::to_string(r.prefetch_rejected),
                    FormatDouble(r.final_window, 0)});
      if (ti > 0) json += ",";
      json += "{\"threads\":" + std::to_string(threads) +
              ",\"cold_ms\":" + FormatDouble(r.cold_ms, 3) +
              ",\"cold_pages_per_s\":" +
              FormatDouble(r.cold_pages_per_s, 1) +
              ",\"prefetch_reads\":" + std::to_string(r.prefetch_reads) +
              ",\"prefetch_hits\":" + std::to_string(r.prefetch_hits) +
              ",\"prefetch_rejected\":" +
              std::to_string(r.prefetch_rejected) +
              ",\"final_window\":" + FormatDouble(r.final_window, 0) +
              "}";
    }
    json += "]}";
  }
  table.Print();

  const double speedup_4t =
      results[2][1].cold_pages_per_s / results[0][1].cold_pages_per_s;
  const double speedup_8t =
      results[2][2].cold_pages_per_s / results[0][2].cold_pages_per_s;
  const double static_speedup_4t =
      results[1][1].cold_pages_per_s / results[0][1].cold_pages_per_s;
  json = "{\"bench\":\"async_io\",\"pages\":" +
         std::to_string(actual_pages) + ",\"rows\":" +
         std::to_string(rows) +
         ",\"read_latency_us\":" + std::to_string(latency_us) +
         ",\"io_threads\":" + std::to_string(io_threads) +
         ",\"prefetch_window\":" + std::to_string(prefetch) +
         ",\"modes\":[" + json +
         "],\"adaptive_speedup_4t\":" + FormatDouble(speedup_4t, 3) +
         ",\"adaptive_speedup_8t\":" + FormatDouble(speedup_8t, 3) +
         ",\"static_speedup_4t\":" + FormatDouble(static_speedup_4t, 3) +
         "}";

  std::printf("\nBENCH_async_io.json %s\n", json.c_str());
  FILE* f = std::fopen("BENCH_async_io.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }

  std::printf(
      "SUMMARY async_io: %.2fx cold 4-thread scan throughput, "
      "async-adaptive vs sync (static %.2fx)\n",
      speedup_4t, static_speedup_4t);
  // The 2x gate needs enough pages and a real latency for the queue-depth
  // overlap to dominate; the CI smoke run uses tiny parameters and only
  // validates the JSON shape.
  if (actual_pages < 1024 || latency_us < 10) return 0;
  return speedup_4t >= 2.0 ? 0 : 1;
}
