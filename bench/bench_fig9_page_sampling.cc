// Figure 9: effectiveness of page sampling.
//
// Queries with a growing number of conjuncts; the relevant page counts of
// all indexed sub-expressions are monitored with page samples of 1%, 10%
// and 100% (full scan with short-circuiting off). Overhead is
// (T_monitored - T)/T; accuracy is the worst relative DPC error across the
// monitored expressions vs an exact raw-walk ground truth. Paper: full
// evaluation becomes impractical as conjuncts grow; 1% sampling holds
// around 2% overhead with max error ~0.5% (at 1.45M pages — our scaled
// tables sample fewer pages, so the error band is wider).

#include "bench/bench_util.h"
#include "core/clustering_ratio.h"
#include "core/monitor_manager.h"

using namespace dpcf;
using namespace dpcf::bench;

int main() {
  std::printf("== Figure 9: effectiveness of page sampling ==\n\n");
  SyntheticPair pair = BuildSyntheticPair(false);

  OptimizerHints hints;
  Optimizer opt(pair.db.get(), &pair.stats, &hints);

  const double fractions[] = {0.01, 0.10, 1.0};
  TablePrinter table({"#preds", "f", "sim overhead", "wall overhead",
                      "max DPC err", "exprs"});

  for (int atoms = 1; atoms <= 8; ++atoms) {
    SingleTableQuery query =
        GenerateMultiPredicateQuery(pair.t, atoms, /*per_atom_sel=*/0.5,
                                    /*seed=*/atoms);
    AccessPathPlan scan;
    scan.kind = AccessKind::kTableScan;
    scan.table = pair.t;
    scan.full_pred = query.pred;

    // Unmonitored baseline.
    CheckOk(pair.db->ColdCache(), "cold");
    ExecContext ctx0(pair.db->buffer_pool());
    PlanMonitorHooks none;
    auto root0 =
        CheckOk(BuildSingleTableExec(scan, query, none), "build baseline");
    RunResult baseline =
        CheckOk(ExecutePlan(root0.get(), &ctx0), "run baseline");

    for (double f : fractions) {
      MonitorOptions mopts;
      mopts.scan_sample_fraction = f;
      mopts.min_sampled_pages = 0;  // sweep f exactly, no floor
      MonitorManager mm(pair.db.get(), mopts);
      InstrumentedHooks hooks =
          CheckOk(mm.ForSingleTable(scan, query), "hooks");

      CheckOk(pair.db->ColdCache(), "cold");
      ExecContext ctx(pair.db->buffer_pool());
      auto root = CheckOk(BuildSingleTableExec(scan, query, hooks.hooks),
                          "build monitored");
      RunResult monitored =
          CheckOk(ExecutePlan(root.get(), &ctx), "run monitored");

      double sim_overhead =
          (monitored.stats.simulated_ms - baseline.stats.simulated_ms) /
          baseline.stats.simulated_ms;
      double wall_overhead =
          (monitored.stats.wall_ms - baseline.stats.wall_ms) /
          std::max(baseline.stats.wall_ms, 1e-9);

      // Exact ground truth per monitored expression.
      double max_err = 0;
      for (const MonitorRecord& m : monitored.stats.monitors) {
        for (const MonitoredExpr& e : hooks.entries) {
          if (e.label != m.label) continue;
          ClusteringRatioResult truth = CheckOk(
              ComputeClusteringRatio(pair.db->disk(), *pair.t, e.expr),
              "truth");
          double denom = std::max<double>(1, pair.t->page_count());
          max_err = std::max(
              max_err, std::abs(m.actual_dpc -
                                static_cast<double>(truth.actual_pages)) /
                           denom);
        }
      }
      table.AddRow({std::to_string(atoms), FormatDouble(f, 2),
                    Pct(sim_overhead), Pct(wall_overhead), Pct(max_err),
                    std::to_string(monitored.stats.monitors.size())});
    }
  }
  table.Print();
  std::printf(
      "\nSUMMARY fig9: overhead grows with #predicates at f=1.0 "
      "(short-circuiting off for every row) and stays flat at f=0.01; "
      "errors are relative to table pages\n");
  return 0;
}
