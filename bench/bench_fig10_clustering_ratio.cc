// Figure 10: page clustering for real datasets.
//
// Clustering Ratio CR = (N - LB)/(UB - LB) for equality predicates with
// selectivity < 10% across the real-world surrogates and the TPC-H-like
// date columns. Paper: CR varies widely (mean 0.56, std-dev 0.4!), so no
// single analytical formula captures on-disk clustering.

#include <cmath>

#include "bench/bench_util.h"
#include "core/clustering_ratio.h"

using namespace dpcf;
using namespace dpcf::bench;

int main() {
  std::printf("== Figure 10: Clustering Ratio for real datasets ==\n\n");
  DatabaseOptions db_opts;
  db_opts.buffer_pool_pages = 8192;
  Database db(db_opts);

  RealWorldOptions rw;
  rw.scale = RealWorldScale();
  rw.build_indexes = false;
  auto datasets = CheckOk(BuildRealWorldDatabases(&db, rw), "realworld");

  TpchLikeOptions tpch;
  tpch.lineitem_rows = TpchRows();
  tpch.build_indexes = false;
  auto tables = CheckOk(BuildTpchLike(&db, tpch), "tpch");
  datasets.push_back(DatasetInfo{
      "tpch_lineitem", tables.lineitem,
      {kLShipDate, kLCommitDate, kLReceiptDate, kLPartKey, kLSuppKey}});

  TablePrinter table({"dataset", "predicate", "sel", "rows", "LB", "N",
                      "UB", "CR"});
  std::vector<double> ratios;
  for (const DatasetInfo& info : datasets) {
    auto queries =
        GenerateRealWorldQueries(db.disk(), info.table,
                                 info.predicate_cols, /*per_column=*/4,
                                 /*max_sel=*/0.10, /*seed=*/31);
    for (const auto& g : queries) {
      ClusteringRatioResult r = CheckOk(
          ComputeClusteringRatio(db.disk(), *info.table, g.query.pred),
          "clustering ratio");
      if (r.upper_bound <= r.lower_bound) continue;
      ratios.push_back(r.ratio);
      table.AddRow({info.name, g.query.pred.ToString(info.table->schema()),
                    Pct(g.target_selectivity),
                    FormatCount(r.qualifying_rows),
                    FormatCount(r.lower_bound), FormatCount(r.actual_pages),
                    FormatCount(r.upper_bound), FormatDouble(r.ratio, 3)});
    }
  }
  table.Print();

  double mean = 0;
  for (double r : ratios) mean += r;
  mean /= static_cast<double>(ratios.size());
  double var = 0;
  for (double r : ratios) var += (r - mean) * (r - mean);
  double stddev = std::sqrt(var / static_cast<double>(ratios.size()));
  std::printf(
      "\nSUMMARY fig10: %zu predicates, CR mean=%s stddev=%s "
      "(paper: mean 0.56, stddev 0.4)\n",
      ratios.size(), FormatDouble(mean, 3).c_str(),
      FormatDouble(stddev, 3).c_str());
  return 0;
}
