// Morsel-parallel scan throughput at 1/2/4/8 workers, monitors on and off,
// on the Fig-6 synthetic table, cold cache per run.
//
// Three time measurements per configuration:
//   wall_ms      in-process wall clock (container-dependent: on a 1-core
//                host the workers time-slice and wall speedup is ~1x);
//   sim_disk_ms  deterministic simulated time with a *single serial disk*:
//                physical I/O is one stream, only CPU overlaps across
//                workers — the paper's 2008 single-arm model;
//   sim_ssd_ms   deterministic simulated time with fully overlapping
//                per-worker I/O (NVMe-style queue depth >= workers):
//                critical path = max over workers of (worker I/O + worker
//                CPU). This is the scaling headline.
// All simulated numbers derive from per-worker counters, so they are
// exactly reproducible on any host.
//
// Emits a BENCH_parallel_scan.json line (and file) for cross-PR tracking.

#include <algorithm>

#include "bench/bench_util.h"
#include "core/monitor_manager.h"
#include "exec/executor.h"
#include "exec/parallel_scan.h"

using namespace dpcf;
using namespace dpcf::bench;

namespace {

struct Measurement {
  int threads = 1;
  bool monitors = false;
  double wall_ms = 0;
  double sim_disk_ms = 0;
  double sim_ssd_ms = 0;
  int64_t rows_out = 0;
  double dpc_full = -1;  // merged full-conjunction DPC (equivalence check)
};

Measurement RunOnce(SyntheticPair& pair, const Predicate& pred,
                    int threads, bool monitors) {
  const SimCostParams params;
  CheckOk(pair.db->ColdCache(), "cold cache");

  std::unique_ptr<ScanMonitorBundle> bundle;
  if (monitors) {
    MonitorManager mm(pair.db.get());
    std::vector<ScanExprRequest> requests;
    std::vector<MonitoredExpr> entries;
    mm.SelectionRequests(pair.t, pred, &requests, &entries);
    bundle = std::make_unique<ScanMonitorBundle>(
        pred, &pair.t->schema(), /*sample_fraction=*/0.05, /*seed=*/2008);
    for (const ScanExprRequest& r : requests) {
      CheckOk(bundle->AddRequest(r), "add request");
    }
  }

  ParallelTableScanOp scan(pair.t, pred, {kC1}, std::move(bundle),
                           ParallelScanOptions{threads, 32});
  ExecContext ctx(pair.db->buffer_pool());
  RunResult run = CheckOk(ExecutePlan(&scan, &ctx, params), "scan");

  Measurement m;
  m.threads = threads;
  m.monitors = monitors;
  m.wall_ms = run.stats.wall_ms;
  m.rows_out = run.stats.rows_returned;
  for (const MonitorRecord& rec : run.stats.monitors) {
    if (rec.expr_text.find(" AND ") != std::string::npos ||
        run.stats.monitors.size() == 1) {
      m.dpc_full = rec.actual_dpc;
    }
  }

  // Totals from the workers' own counters. A cold full scan reads every
  // page physically, sequentially within each morsel.
  const IoStats empty_io;
  double total_io_ms = 0;
  double total_cpu_ms = 0;
  int64_t total_pages = 0;
  for (const ParallelWorkerStats& ws : scan.worker_stats()) {
    total_io_ms += static_cast<double>(ws.pages_scanned) * params.seq_read_ms;
    total_cpu_ms += SimulatedMillis(empty_io, ws.cpu, params);
    total_pages += ws.pages_scanned;
  }

  // Critical path under the *deterministic equal-rate* morsel assignment
  // (morsel m -> worker m mod threads) — what self-scheduling converges to
  // on a dedicated n-core host. The observed per-worker claim counts on an
  // oversubscribed host are scheduler noise (one worker can drain the
  // queue before the others are even scheduled), so they are deliberately
  // not used for the simulated numbers.
  const uint32_t morsel_pages = 32;
  std::vector<int64_t> pages_of(static_cast<size_t>(threads), 0);
  int64_t remaining = total_pages;
  for (uint32_t morsel = 0; remaining > 0; ++morsel) {
    int64_t take = std::min<int64_t>(remaining, morsel_pages);
    pages_of[morsel % static_cast<uint32_t>(threads)] += take;
    remaining -= take;
  }
  double max_share_ms = 0;
  double max_cpu_share_ms = 0;
  for (int64_t p : pages_of) {
    double frac = total_pages == 0
                      ? 0
                      : static_cast<double>(p) / static_cast<double>(total_pages);
    max_share_ms = std::max(
        max_share_ms, frac * total_io_ms + frac * total_cpu_ms);
    max_cpu_share_ms = std::max(max_cpu_share_ms, frac * total_cpu_ms);
  }
  m.sim_disk_ms = total_io_ms + max_cpu_share_ms;
  m.sim_ssd_ms = max_share_ms;
  return m;
}

}  // namespace

int main() {
  std::printf("== Morsel-parallel scan throughput ==\n");
  SyntheticPair pair = BuildSyntheticPair(/*with_t1=*/false);
  const int64_t rows = pair.t->row_count();
  const double pages = static_cast<double>(pair.t->page_count());
  std::printf("synthetic T: %s rows, %s pages, morsel=32 pages\n\n",
              FormatCount(rows).c_str(),
              FormatCount(pair.t->page_count()).c_str());

  // Fig-6-style conjunction: a ~5%-selective sargable atom plus a second
  // atom on an uncorrelated column.
  Predicate pred({PredicateAtom::Int64(kC3, CmpOp::kLt, rows / 20),
                  PredicateAtom::Int64(kC5, CmpOp::kGe, rows / 2)});

  TablePrinter table({"threads", "monitors", "wall_ms", "sim_disk_ms",
                      "sim_ssd_ms", "ssd_speedup", "ssd_pages/s"});
  std::vector<Measurement> all;
  double base_ssd[2] = {0, 0};
  for (bool monitors : {false, true}) {
    for (int threads : {1, 2, 4, 8}) {
      Measurement m = RunOnce(pair, pred, threads, monitors);
      if (threads == 1) base_ssd[monitors ? 1 : 0] = m.sim_ssd_ms;
      double speedup = base_ssd[monitors ? 1 : 0] / m.sim_ssd_ms;
      table.AddRow({std::to_string(threads), monitors ? "on" : "off",
                    FormatDouble(m.wall_ms, 1),
                    FormatDouble(m.sim_disk_ms, 1),
                    FormatDouble(m.sim_ssd_ms, 1),
                    FormatDouble(speedup, 2) + "x",
                    FormatCount(static_cast<int64_t>(
                        pages / (m.sim_ssd_ms / 1000.0)))});
      all.push_back(m);
    }
  }
  table.Print();

  // Equivalence spot-check across thread counts (same seed -> identical
  // merged feedback) — a cheap canary for the test suite's guarantee.
  for (const Measurement& m : all) {
    if (!m.monitors) continue;
    if (m.dpc_full != all[4].dpc_full || m.rows_out != all[0].rows_out) {
      std::fprintf(stderr, "FATAL: thread count changed results\n");
      return 1;
    }
  }

  std::string json = "{\"bench\":\"parallel_scan\",\"rows\":" +
                     std::to_string(rows) + ",\"pages\":" +
                     std::to_string(pair.t->page_count()) + ",\"runs\":[";
  for (size_t i = 0; i < all.size(); ++i) {
    const Measurement& m = all[i];
    if (i > 0) json += ",";
    json += "{\"threads\":" + std::to_string(m.threads) +
            ",\"monitors\":" + (m.monitors ? "true" : "false") +
            ",\"wall_ms\":" + FormatDouble(m.wall_ms, 3) +
            ",\"sim_disk_ms\":" + FormatDouble(m.sim_disk_ms, 3) +
            ",\"sim_ssd_ms\":" + FormatDouble(m.sim_ssd_ms, 3) + "}";
  }
  json += "]}";
  std::printf("\nBENCH_parallel_scan.json %s\n", json.c_str());
  FILE* f = std::fopen("BENCH_parallel_scan.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }

  const double speedup4 =
      base_ssd[1] / all[6].sim_ssd_ms;  // monitors on, 4 threads
  std::printf("SUMMARY parallel_scan: %.2fx simulated speedup at 4 threads "
              "(monitors on)\n", speedup4);
  // The >= 2x gate only makes sense when there are at least a couple of
  // morsels per worker; a table smaller than that has nothing to overlap.
  if (pages < 4 * 2 * 32) return 0;
  return speedup4 >= 2.0 ? 0 : 1;
}
