// Ablation: probabilistic counting vs reservoir-sampling distinct
// estimation for fetch-stream page counting — the empirical comparison the
// paper explicitly defers ("a thorough empirical evaluation of
// probabilistic counting vs. distinct value estimation using sampling …
// is part of future work", Section III-A).
//
// Both mechanisms monitor the same Index Seek fetch streams over the
// synthetic table at several selectivities and correlations; we report the
// relative DPC error and the per-row monitoring cost.

#include <cmath>

#include "bench/bench_util.h"
#include "core/clustering_ratio.h"
#include "core/monitor_manager.h"

using namespace dpcf;
using namespace dpcf::bench;

int main() {
  std::printf(
      "== Ablation: linear counting vs reservoir+GEE (paper future "
      "work) ==\n\n");
  SyntheticPair pair = BuildSyntheticPair(false);

  TablePrinter table({"column", "sel", "true DPC", "linear est",
                      "linear err", "reservoir est", "reservoir err",
                      "linear KiB", "reservoir KiB"});

  struct Case {
    int col;
    const char* index;
  };
  const Case cases[] = {{kC2, "T_c2"}, {kC4, "T_c4"}, {kC5, "T_c5"}};
  double worst_linear = 0, worst_reservoir = 0;

  for (const Case& c : cases) {
    for (double sel : {0.01, 0.05}) {
      int64_t v = static_cast<int64_t>(sel * pair.t->row_count());
      SingleTableQuery query;
      query.table = pair.t;
      query.count_star = true;
      query.count_col = kPadding;
      query.pred.Add(PredicateAtom::Int64(c.col, CmpOp::kLt, v));

      ClusteringRatioResult truth = CheckOk(
          ComputeClusteringRatio(pair.db->disk(), *pair.t, query.pred),
          "truth");

      AccessPathPlan seek;
      seek.kind = AccessKind::kIndexSeek;
      seek.table = pair.t;
      seek.full_pred = query.pred;
      IndexRange range;
      range.index = pair.db->GetIndex(c.index);
      range.lo = BtreeKey::Min(INT64_MIN);
      range.hi = BtreeKey::Max(v - 1);
      range.sargable = query.pred;
      seek.ranges = {range};

      auto run_with = [&](DistinctCountMechanism mech) {
        MonitorOptions mopts;
        mopts.fetch_mechanism = mech;
        MonitorManager mm(pair.db.get(), mopts);
        CheckOk(pair.db->ColdCache(), "cold");
        ExecContext ctx(pair.db->buffer_pool());
        InstrumentedHooks hooks =
            CheckOk(mm.ForSingleTable(seek, query), "hooks");
        auto root = CheckOk(BuildSingleTableExec(seek, query, hooks.hooks),
                            "build");
        RunResult result = CheckOk(ExecutePlan(root.get(), &ctx), "run");
        return result.stats.monitors.empty()
                   ? -1.0
                   : result.stats.monitors[0].actual_dpc;
      };

      double linear = run_with(DistinctCountMechanism::kLinearCounting);
      double reservoir =
          run_with(DistinctCountMechanism::kReservoirSampling);
      double denom = std::max(1.0, static_cast<double>(truth.actual_pages));
      double lerr = std::abs(linear - truth.actual_pages) / denom;
      double rerr = std::abs(reservoir - truth.actual_pages) / denom;
      worst_linear = std::max(worst_linear, lerr);
      worst_reservoir = std::max(worst_reservoir, rerr);
      table.AddRow({ColumnName(*pair.t, c.col), Pct(sel),
                    FormatCount(truth.actual_pages),
                    FormatDouble(linear, 1), Pct(lerr),
                    FormatDouble(reservoir, 1), Pct(rerr),
                    FormatDouble((1 << 14) / 8.0 / 1024.0, 1),
                    FormatDouble((1 << 10) * 8.0 / 1024.0, 1)});
    }
  }
  table.Print();
  std::printf(
      "\nSUMMARY ablation_estimators: worst linear-counting error %s vs "
      "worst reservoir+GEE error %s — matching the paper's expectation "
      "that sampling-based distinct estimators cannot match probabilistic "
      "counting's guarantees (they do not see every row's PID)\n",
      Pct(worst_linear).c_str(), Pct(worst_reservoir).c_str());
  return 0;
}
