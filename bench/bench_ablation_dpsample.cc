// Ablation: DPSample fraction vs estimate error and overhead.
//
// Sweeps the Bernoulli page-sampling fraction on a non-prefix monitored
// expression over the synthetic table; reports the relative DPC error
// (vs exact ground truth), the expected Chernoff-style error band, and the
// simulated-time overhead.

#include <cmath>

#include "bench/bench_util.h"
#include "core/clustering_ratio.h"
#include "core/monitor_manager.h"

using namespace dpcf;
using namespace dpcf::bench;

int main() {
  std::printf("== Ablation: DPSample fraction vs error/overhead ==\n\n");
  SyntheticPair pair = BuildSyntheticPair(false);

  // Pushed predicate on C3, monitored expression on C4 (non-prefix).
  SingleTableQuery query;
  query.table = pair.t;
  query.count_star = true;
  query.count_col = kPadding;
  query.pred.Add(PredicateAtom::Int64(kC3, CmpOp::kLt,
                                      pair.t->row_count() / 20));
  Predicate monitored_expr(
      {PredicateAtom::Int64(kC4, CmpOp::kLt, pair.t->row_count() / 10)});

  ClusteringRatioResult truth = CheckOk(
      ComputeClusteringRatio(pair.db->disk(), *pair.t, monitored_expr),
      "truth");
  std::printf("ground truth: DPC=%s of %s pages\n\n",
              FormatCount(truth.actual_pages).c_str(),
              FormatCount(pair.t->page_count()).c_str());

  AccessPathPlan scan;
  scan.kind = AccessKind::kTableScan;
  scan.table = pair.t;
  scan.full_pred = query.pred;

  // Unmonitored baseline.
  CheckOk(pair.db->ColdCache(), "cold");
  ExecContext ctx0(pair.db->buffer_pool());
  PlanMonitorHooks none;
  auto root0 = CheckOk(BuildSingleTableExec(scan, query, none), "baseline");
  RunResult baseline = CheckOk(ExecutePlan(root0.get(), &ctx0), "run");

  TablePrinter table({"f", "pages sampled", "mean err", "max err",
                      "expected 2sigma", "sim overhead"});
  for (double f : {0.005, 0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.0}) {
    const int kTrials = 9;
    std::vector<double> errs;
    int64_t sampled = 0;
    double overhead = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      PlanMonitorHooks hooks;
      hooks.scan_sample_fraction = f;
      hooks.seed = 1000 + trial;
      ScanExprRequest req;
      req.label = "expr";
      req.expr = monitored_expr;
      hooks.outer_scan_requests.push_back(req);

      CheckOk(pair.db->ColdCache(), "cold");
      ExecContext ctx(pair.db->buffer_pool());
      auto root =
          CheckOk(BuildSingleTableExec(scan, query, hooks), "build");
      RunResult run = CheckOk(ExecutePlan(root.get(), &ctx), "run");
      const MonitorRecord& m = run.stats.monitors[0];
      errs.push_back(std::abs(m.actual_dpc -
                              static_cast<double>(truth.actual_pages)) /
                     static_cast<double>(truth.actual_pages));
      overhead +=
          (run.stats.simulated_ms - baseline.stats.simulated_ms) /
          baseline.stats.simulated_ms;
      // Recover pages_sampled from the record (same every trial-ish).
      sampled = static_cast<int64_t>(f * pair.t->page_count());
    }
    double mean = 0, mx = 0;
    for (double e : errs) {
      mean += e;
      mx = std::max(mx, e);
    }
    mean /= errs.size();
    // Binomial sampling: sigma/DPC = sqrt((1-f)/(f*DPC)).
    double sigma =
        std::sqrt((1.0 - std::min(f, 1.0)) /
                  (f * static_cast<double>(truth.actual_pages)));
    table.AddRow({FormatDouble(f, 3), FormatCount(sampled), Pct(mean),
                  Pct(mx), Pct(2 * sigma),
                  Pct(overhead / kTrials)});
  }
  table.Print();
  std::printf(
      "\nSUMMARY ablation_dpsample: error follows the 1/sqrt(f·DPC) "
      "Chernoff band; overhead scales with f (paper: f=1%% => ~2%% "
      "overhead, 0.5%% error at 1.45M pages)\n");
  return 0;
}
