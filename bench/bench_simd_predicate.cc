// Scalar vs runtime-dispatched SIMD predicate kernels (DESIGN.md
// section 16), on two synthetic tables that differ only in row width —
// narrow (44-byte rows, dense pages, small gather stride) and wide
// (100-byte rows, the paper's layout) — at low/high selectivity and 1/4
// scan threads, plus the clustered range scan's row-at-a-time vs
// leaf-run batch path.
//
// Warm-cache and CPU-bound like bench_predicate_batch: the pool holds
// both tables, a warm-up pass faults them in, and the only variable per
// pair is the SIMD table pinned with SetActiveSimd (the kernels are the
// ones tests/simd_dispatch_test.cc proves bit-for-bit identical, so the
// ratio prices pure ISA). Kernel-only rows strip the operator
// scaffolding both ISAs share; operator rows show what survives tuple
// materialization and morsel dispatch.
//
// Emits BENCH_simd_predicate.json. Exits nonzero if the dispatched ISA
// fails to reach 1.5x scalar on the selective narrow-row kernel, or if
// the clustered batch path fails to beat row-at-a-time — both gated off
// when the machine dispatches to scalar anyway or for tiny CI-smoke
// parameterizations (which only validate the JSON shape).

#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/executor.h"
#include "exec/parallel_scan.h"
#include "exec/predicate_kernel.h"
#include "exec/scan_ops.h"
#include "exec/simd.h"

using namespace dpcf;
using namespace dpcf::bench;

namespace {

void PinIsa(SimdIsa isa) {
  CheckOk(SetActiveSimd(isa), "pin SIMD ISA");
}

/// Best-of-`passes` wall ms for one kernel-only measurement: repeated
/// EvalBatch sweeps over an L2-resident window of pages (resolved once via
/// RawPage — no per-page latch or pin in the timed region) until the
/// table's row count has been processed. This isolates the predicate
/// kernel's compute throughput: the full-table operator rows below keep
/// the memory system and the scan scaffolding in the measurement, so the
/// pair brackets what the ISA change can and does deliver end to end.
/// Survivor counts must agree across passes (and, via *rows_out, across
/// ISAs).
double TimedKernelPasses(Database* db, Table* t, const Predicate& pred,
                         int passes, int64_t* rows_out) {
  const HeapFile* file = t->file();
  const Schema* schema = &t->schema();
  // ~1.5 MB of pages: resident in any L2/L3 this bench will meet.
  const PageNo window = std::min<PageNo>(
      file->page_count(),
      std::max<PageNo>(1, (3u << 19) / db->options().page_size));
  std::vector<const char*> pages;
  int64_t window_rows = 0;
  for (PageNo p = 0; p < window; ++p) {
    pages.push_back(db->disk()->RawPage(PageId{file->segment(), p}));
    window_rows += HeapFile::PageRowCount(pages.back());
  }
  const int sweeps =
      static_cast<int>((t->row_count() + window_rows - 1) / window_rows);
  // Construct after the ISA pin: kernels snapshot the dispatch table.
  const PredicateKernel kernel(pred, schema);
  double best_ms = 0;
  for (int pass = 0; pass < passes; ++pass) {
    CpuStats cpu;
    RowBlock block(schema);
    std::vector<uint32_t> sel;
    int64_t survivors = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int sweep = 0; sweep < sweeps; ++sweep) {
      for (const char* page : pages) {
        const uint32_t rows_in_page = HeapFile::PageRowCount(page);
        block.Reset(HeapFile::PageRows(page), rows_in_page);
        sel.resize(rows_in_page);
        survivors +=
            kernel.EvalBatch(&block, &cpu, sel.data(), /*leading=*/nullptr);
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (pass == 0 || ms < best_ms) best_ms = ms;
    if (*rows_out < 0) *rows_out = survivors;
    if (survivors != *rows_out) {
      std::fprintf(stderr, "FATAL: kernel pass changed survivor count\n");
      std::exit(1);
    }
  }
  return best_ms;
}

/// Best-of-`passes` wall ms for a full vectorized scan operator at
/// `threads` workers under the currently pinned ISA.
double TimedScanPasses(Database* db, Table* t, const Predicate& pred,
                       int threads, int passes, int64_t* rows_out) {
  double best_ms = 0;
  for (int pass = 0; pass < passes; ++pass) {
    ParallelScanOptions options;
    options.num_threads = threads;
    options.morsel_pages = 32;
    options.vectorized = true;
    ParallelTableScanOp scan(t, pred, {kC1}, /*monitors=*/nullptr, options);
    ExecContext ctx(db->buffer_pool());
    RunResult run = CheckOk(ExecutePlan(&scan, &ctx), "scan");
    if (pass == 0 || run.stats.wall_ms < best_ms) best_ms = run.stats.wall_ms;
    if (*rows_out < 0) *rows_out = run.stats.rows_returned;
    if (run.stats.rows_returned != *rows_out) {
      std::fprintf(stderr, "FATAL: scan pass changed row count\n");
      std::exit(1);
    }
  }
  return best_ms;
}

/// Best-of-`passes` wall ms for a clustered range scan over [lo, hi]
/// with a selective residual predicate (C5 keeps ~1%), row-at-a-time or
/// leaf-run batch. The selective residual makes per-row predicate work
/// the dominant cost — with a permissive residual both paths are
/// materialization-bound and the ratio collapses to 1.
double TimedClusteredPasses(Database* db, Table* t, Index* cluster,
                            int64_t lo, int64_t hi, bool vectorized,
                            int passes, int64_t* rows_out) {
  Predicate pushed;
  pushed.Add(PredicateAtom::Int64(kC1, CmpOp::kGe, lo));
  pushed.Add(PredicateAtom::Int64(kC1, CmpOp::kLe, hi));
  pushed.Add(PredicateAtom::Int64(kC5, CmpOp::kLt, t->row_count() / 100));
  double best_ms = 0;
  for (int pass = 0; pass < passes; ++pass) {
    ClusteredRangeScanOp scan(t, cluster, lo, hi, pushed, {kC1, kC3},
                              /*monitors=*/nullptr, vectorized);
    ExecContext ctx(db->buffer_pool());
    RunResult run = CheckOk(ExecutePlan(&scan, &ctx), "clustered scan");
    if (pass == 0 || run.stats.wall_ms < best_ms) best_ms = run.stats.wall_ms;
    if (*rows_out < 0) *rows_out = run.stats.rows_returned;
    if (run.stats.rows_returned != *rows_out) {
      std::fprintf(stderr, "FATAL: clustered pass changed row count\n");
      std::exit(1);
    }
  }
  return best_ms;
}

}  // namespace

int main() {
  const int passes = static_cast<int>(EnvInt("DPCF_BENCH_PASSES", 5));
  const SimdIsa dispatched = ActiveSimdIsa();

  std::printf("== Scalar vs dispatched SIMD predicate kernels ==\n");
  std::printf("dispatched ISA: %s\n", SimdIsaName(dispatched));

  DatabaseOptions db_opts;
  // Pool sized so narrow (~44 B rows) and wide (100 B rows) tables are
  // both resident after warm-up; every timed pass is pure CPU.
  db_opts.buffer_pool_pages = 8192;
  Database db(db_opts);

  struct Shape {
    const char* name;
    uint32_t padding_width;
    Table* t = nullptr;
    Index* cluster = nullptr;
  };
  Shape shapes[] = {{"narrow", 4}, {"wide", 60}};
  for (Shape& s : shapes) {
    SyntheticOptions opts;
    opts.num_rows = SyntheticRows();
    opts.padding_width = s.padding_width;
    opts.seed = 42;
    opts.build_indexes = false;
    const std::string name = std::string("T_") + s.name;
    s.t = CheckOk(BuildSyntheticTable(&db, name, opts), "build table");
    s.cluster = CheckOk(
        db.CreateIndex(name + "_c1", name, std::vector<int>{kC1}, true),
        "cluster index");
  }
  const int64_t rows = shapes[0].t->row_count();
  std::printf("synthetic tables: %s rows each, %s + %s pages, passes=%d\n\n",
              FormatCount(rows).c_str(),
              FormatCount(shapes[0].t->page_count()).c_str(),
              FormatCount(shapes[1].t->page_count()).c_str(), passes);

  struct Config {
    const char* name;
    Predicate pred;
  };
  // Low: the leading atom rejects ~99% of rows — the selective case the
  // masked short-circuit is built for. High: ~90% survive, the dense
  // worst case for a selection vector. Atoms lead on C5 (a uniform random
  // permutation) so selectivity is position-independent and holds both on
  // the full table and inside the kernel measurement's page window (C3 is
  // window-shuffled, i.e. correlated with physical position).
  const Config configs[] = {
      {"low", Predicate({PredicateAtom::Int64(kC5, CmpOp::kLt, rows / 100),
                         PredicateAtom::Int64(kC3, CmpOp::kGe, rows / 2)})},
      {"high", Predicate({PredicateAtom::Int64(kC5, CmpOp::kGe, rows / 10)})},
  };

  // Warm-up: fault both tables into the pool once.
  for (Shape& s : shapes) {
    int64_t ignored = -1;
    TimedKernelPasses(&db, s.t, configs[0].pred, 1, &ignored);
  }

  // ---- kernel-only: scalar vs dispatched, narrow/wide x low/high.
  struct KernelMeasurement {
    const char* shape = "";
    const char* selectivity = "";
    double scalar_ms = 0;
    double simd_ms = 0;
    int64_t rows_out = -1;
  };
  std::vector<KernelMeasurement> kernels;
  TablePrinter ktable({"kernel-only", "selectivity", "scalar_ms", "simd_ms",
                       "speedup", "simd_rows/s"});
  for (Shape& s : shapes) {
    for (const Config& config : configs) {
      KernelMeasurement k;
      k.shape = s.name;
      k.selectivity = config.name;
      int64_t scalar_rows = -1, simd_rows = -1;
      PinIsa(SimdIsa::kScalar);
      k.scalar_ms =
          TimedKernelPasses(&db, s.t, config.pred, passes, &scalar_rows);
      PinIsa(dispatched);
      k.simd_ms =
          TimedKernelPasses(&db, s.t, config.pred, passes, &simd_rows);
      if (scalar_rows != simd_rows) {
        std::fprintf(stderr, "FATAL: ISAs disagree on survivors\n");
        return 1;
      }
      k.rows_out = simd_rows;
      ktable.AddRow({s.name, config.name, FormatDouble(k.scalar_ms, 2),
                     FormatDouble(k.simd_ms, 2),
                     FormatDouble(k.scalar_ms / k.simd_ms, 2) + "x",
                     FormatCount(static_cast<int64_t>(
                         static_cast<double>(rows) / (k.simd_ms / 1000.0)))});
      kernels.push_back(k);
    }
  }
  ktable.Print();

  // ---- operator level: full vectorized scans, scalar vs dispatched ISA,
  // at 1 and 4 morsel workers.
  struct ScanMeasurement {
    const char* shape = "";
    const char* selectivity = "";
    int threads = 1;
    double scalar_ms = 0;
    double simd_ms = 0;
    int64_t rows_out = -1;
  };
  std::vector<ScanMeasurement> scans;
  TablePrinter stable({"operator", "selectivity", "threads", "scalar_ms",
                       "simd_ms", "speedup"});
  for (Shape& s : shapes) {
    for (const Config& config : configs) {
      for (int threads : {1, 4}) {
        ScanMeasurement m;
        m.shape = s.name;
        m.selectivity = config.name;
        m.threads = threads;
        int64_t scalar_rows = -1, simd_rows = -1;
        PinIsa(SimdIsa::kScalar);
        m.scalar_ms = TimedScanPasses(&db, s.t, config.pred, threads, passes,
                                      &scalar_rows);
        PinIsa(dispatched);
        m.simd_ms = TimedScanPasses(&db, s.t, config.pred, threads, passes,
                                    &simd_rows);
        if (scalar_rows != simd_rows) {
          std::fprintf(stderr, "FATAL: operator ISAs disagree on rows\n");
          return 1;
        }
        m.rows_out = simd_rows;
        stable.AddRow({s.name, config.name, std::to_string(threads),
                       FormatDouble(m.scalar_ms, 1),
                       FormatDouble(m.simd_ms, 1),
                       FormatDouble(m.scalar_ms / m.simd_ms, 2) + "x"});
        scans.push_back(m);
      }
    }
  }
  std::printf("\n");
  stable.Print();

  // ---- clustered range scan: row-at-a-time vs leaf-run batch (both
  // under the dispatched ISA; the batch path additionally replaces the
  // per-row key check with the run-cutoff primitive).
  PinIsa(dispatched);
  struct ClusteredMeasurement {
    const char* shape = "";
    double row_ms = 0;
    double batch_ms = 0;
    int64_t rows_out = -1;
  };
  std::vector<ClusteredMeasurement> clustered;
  TablePrinter ctable({"clustered", "row_ms", "batch_ms", "speedup"});
  for (Shape& s : shapes) {
    ClusteredMeasurement c;
    c.shape = s.name;
    const int64_t lo = rows / 8, hi = 7 * rows / 8;
    int64_t row_rows = -1, batch_rows = -1;
    c.row_ms = TimedClusteredPasses(&db, s.t, s.cluster, lo, hi,
                                    /*vectorized=*/false, passes, &row_rows);
    c.batch_ms = TimedClusteredPasses(&db, s.t, s.cluster, lo, hi,
                                      /*vectorized=*/true, passes,
                                      &batch_rows);
    if (row_rows != batch_rows) {
      std::fprintf(stderr, "FATAL: clustered paths disagree on rows\n");
      return 1;
    }
    c.rows_out = batch_rows;
    ctable.AddRow({s.name, FormatDouble(c.row_ms, 2),
                   FormatDouble(c.batch_ms, 2),
                   FormatDouble(c.row_ms / c.batch_ms, 2) + "x"});
    clustered.push_back(c);
  }
  std::printf("\n");
  ctable.Print();

  // ---- JSON + gates.
  double kernel_speedup_narrow_low = 0;
  std::string json = std::string("{\"bench\":\"simd_predicate\",\"isa\":\"") +
                     SimdIsaName(dispatched) + "\",\"rows\":" +
                     std::to_string(rows) +
                     ",\"passes\":" + std::to_string(passes) +
                     ",\"kernel\":[";
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelMeasurement& k = kernels[i];
    const double speedup = k.scalar_ms / k.simd_ms;
    if (std::string(k.shape) == "narrow" &&
        std::string(k.selectivity) == "low") {
      kernel_speedup_narrow_low = speedup;
    }
    if (i > 0) json += ",";
    json += std::string("{\"shape\":\"") + k.shape +
            "\",\"selectivity\":\"" + k.selectivity +
            "\",\"scalar_ms\":" + FormatDouble(k.scalar_ms, 3) +
            ",\"simd_ms\":" + FormatDouble(k.simd_ms, 3) +
            ",\"speedup\":" + FormatDouble(speedup, 3) +
            ",\"rows_out\":" + std::to_string(k.rows_out) + "}";
  }
  json += "],\"operator\":[";
  for (size_t i = 0; i < scans.size(); ++i) {
    const ScanMeasurement& m = scans[i];
    if (i > 0) json += ",";
    json += std::string("{\"shape\":\"") + m.shape +
            "\",\"selectivity\":\"" + m.selectivity +
            "\",\"threads\":" + std::to_string(m.threads) +
            ",\"scalar_ms\":" + FormatDouble(m.scalar_ms, 3) +
            ",\"simd_ms\":" + FormatDouble(m.simd_ms, 3) +
            ",\"speedup\":" + FormatDouble(m.scalar_ms / m.simd_ms, 3) +
            ",\"rows_out\":" + std::to_string(m.rows_out) + "}";
  }
  json += "],\"clustered\":[";
  double clustered_speedup_min = 0;
  for (size_t i = 0; i < clustered.size(); ++i) {
    const ClusteredMeasurement& c = clustered[i];
    const double speedup = c.row_ms / c.batch_ms;
    if (i == 0 || speedup < clustered_speedup_min) {
      clustered_speedup_min = speedup;
    }
    if (i > 0) json += ",";
    json += std::string("{\"shape\":\"") + c.shape +
            "\",\"row_ms\":" + FormatDouble(c.row_ms, 3) +
            ",\"batch_ms\":" + FormatDouble(c.batch_ms, 3) +
            ",\"speedup\":" + FormatDouble(speedup, 3) +
            ",\"rows_out\":" + std::to_string(c.rows_out) + "}";
  }
  json += "],\"kernel_speedup_narrow_low\":" +
          FormatDouble(kernel_speedup_narrow_low, 3) +
          ",\"clustered_speedup_min\":" +
          FormatDouble(clustered_speedup_min, 3) + "}";

  std::printf("\nBENCH_simd_predicate.json %s\n", json.c_str());
  FILE* f = std::fopen("BENCH_simd_predicate.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }

  std::printf(
      "SUMMARY simd_predicate: %s dispatch %.2fx scalar on the selective "
      "narrow-row kernel; clustered batch %.2fx row-at-a-time (min over "
      "shapes)\n",
      SimdIsaName(dispatched), kernel_speedup_narrow_low,
      clustered_speedup_min);

  // Gates need real scale (CI smoke only validates JSON shape) and a
  // vector ISA to compare against — on a scalar-only host the two sides
  // of every pair run identical code.
  if (rows < 200'000 || dispatched == SimdIsa::kScalar) return 0;
  if (kernel_speedup_narrow_low < 1.5) return 1;
  if (clustered_speedup_min <= 1.0) return 1;
  return 0;
}
