// Table I: databases used in the experiments — rows, pages, rows/page.
//
// Paper values (for shape comparison; our tables are scaled down):
//   Book Retailer 10.8M rows / 403K pages / 27 rows-per-page
//   Yellow Pages   1.0M / 25K / 39      TPC-H(10GB,Z=1)  60M / 1121K / 54
//   Voter data     4.0M / 89K / 46      Products        0.56M / 65K / 9
//   Synthetic      100M / 1450K / 80 (written as 1450/80 in scaled units)

#include "bench/bench_util.h"

using namespace dpcf;
using namespace dpcf::bench;

int main() {
  std::printf("== Table I: databases used in experiments (scaled) ==\n\n");

  DatabaseOptions db_opts;
  db_opts.buffer_pool_pages = 8192;
  Database db(db_opts);

  TablePrinter table({"Database", "Rows", "Pages", "Rows/Page",
                      "Paper Rows/Page"});

  RealWorldOptions rw;
  rw.scale = RealWorldScale();
  rw.build_indexes = false;  // inventory only
  auto datasets = CheckOk(BuildRealWorldDatabases(&db, rw), "realworld");
  const char* paper_rpp[] = {"27", "39", "46", "9"};
  int i = 0;
  for (const DatasetInfo& info : datasets) {
    table.AddRow({info.name, FormatCount(info.table->row_count()),
                  FormatCount(info.table->page_count()),
                  std::to_string(info.table->rows_per_page()),
                  paper_rpp[i++]});
  }

  TpchLikeOptions tpch;
  tpch.lineitem_rows = TpchRows();
  tpch.build_indexes = false;
  auto tables = CheckOk(BuildTpchLike(&db, tpch), "tpch");
  table.AddRow({"tpch_lineitem (Z=1)",
                FormatCount(tables.lineitem->row_count()),
                FormatCount(tables.lineitem->page_count()),
                std::to_string(tables.lineitem->rows_per_page()), "54"});
  table.AddRow({"tpch_orders", FormatCount(tables.orders->row_count()),
                FormatCount(tables.orders->page_count()),
                std::to_string(tables.orders->rows_per_page()), "-"});

  SyntheticOptions synth;
  synth.num_rows = SyntheticRows();
  synth.build_indexes = false;
  Table* t = CheckOk(BuildSyntheticTable(&db, "T", synth), "synthetic");
  table.AddRow({"synthetic T", FormatCount(t->row_count()),
                FormatCount(t->page_count()),
                std::to_string(t->rows_per_page()), "80"});

  table.Print();
  std::printf(
      "\nSUMMARY table1: %d databases; synthetic rows/page=%u "
      "(paper: 80; 100-byte tuples)\n",
      6, t->rows_per_page());
  return 0;
}
