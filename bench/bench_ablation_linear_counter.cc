// Ablation: linear-counting bitmap size vs estimation error (paper III-A:
// "the memory required to ensure high accuracy is very small — typically
// much less than one bit per page").

#include <cmath>

#include "bench/bench_util.h"
#include "core/linear_counter.h"

using namespace dpcf;
using namespace dpcf::bench;

int main() {
  std::printf("== Ablation: linear counter bits vs relative error ==\n\n");
  TablePrinter table({"distinct PIDs", "bits", "bits/PID", "mean err",
                      "p95 err", "saturated"});

  for (int64_t distinct : {1'000, 10'000, 100'000}) {
    for (uint32_t bits : {1u << 10, 1u << 12, 1u << 14, 1u << 16}) {
      const int kTrials = 25;
      std::vector<double> errs;
      int saturated = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        LinearCounter counter(bits, /*seed=*/trial * 7919 + 1);
        Rng rng(trial + 100);
        // Each distinct PID appears a random number of times (duplicates
        // exercise the dedup-free property).
        for (int64_t v = 0; v < distinct; ++v) {
          uint64_t pid = static_cast<uint64_t>(v) * 2654435761ULL;
          int dups = 1 + static_cast<int>(rng.NextBounded(3));
          for (int d = 0; d < dups; ++d) counter.Add(pid);
        }
        saturated += counter.saturated();
        errs.push_back(std::abs(counter.Estimate() -
                                static_cast<double>(distinct)) /
                       static_cast<double>(distinct));
      }
      std::sort(errs.begin(), errs.end());
      double mean = 0;
      for (double e : errs) mean += e;
      mean /= errs.size();
      table.AddRow(
          {FormatCount(distinct), FormatCount(bits),
           FormatDouble(static_cast<double>(bits) / distinct, 3),
           Pct(mean), Pct(errs[static_cast<size_t>(errs.size() * 0.95)]),
           saturated ? std::to_string(saturated) + "/25" : "no"});
    }
  }
  table.Print();
  std::printf(
      "\nSUMMARY ablation_linear_counter: ~0.1-1 bit per distinct page "
      "keeps error in low single digits; saturation flags undersized "
      "bitmaps\n");
  return 0;
}
