// Figure 8: SpeedUp for join queries.
//
// 40 queries "SELECT COUNT(T.padding) FROM T1 JOIN T ON T1.Ci = T.Ci WHERE
// T1.C1 < val" with outer selectivity below the ~7% Hash/INL crossover.
// The bitvector filter in the Hash Join's probe scan measures
// DPC(T, join-pred); feeding it back flips Hash Join -> INL where the join
// column is correlated with T's clustering. Max bitvector overhead the
// paper observed: 2%.

#include <map>

#include "bench/bench_util.h"

using namespace dpcf;
using namespace dpcf::bench;

int main() {
  std::printf("== Figure 8: SpeedUp for join queries ==\n");
  SyntheticPair pair = BuildSyntheticPair(/*with_t1=*/true);
  std::printf("T: %s rows; T1: %s rows (independent permutations)\n\n",
              FormatCount(pair.t->row_count()).c_str(),
              FormatCount(pair.t1->row_count()).c_str());

  auto queries = GenerateSyntheticJoinQueries(pair.t, pair.t1, /*count=*/40,
                                              0.005, 0.07, /*seed=*/1717);

  FeedbackRunOptions options;
  // The paper optimizes each query independently; cross-query DPC-
  // histogram learning is evaluated separately (ablation_feedback_reuse).
  options.learn_dpc_histograms = false;
  FeedbackDriver driver(pair.db.get(), &pair.stats, options);

  TablePrinter table({"q#", "join col", "outer sel", "plan P", "plan P'",
                      "T(ms)", "T'(ms)", "SpeedUp", "mon ovh"});
  std::map<int, std::vector<double>> by_col;
  int changed = 0;
  double worst_overhead = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const GeneratedJoinQuery& g = queries[i];
    driver.hints()->Clear();
    driver.store()->Clear();
    FeedbackOutcome out = CheckOk(driver.RunJoin(g.query), "join run");
    by_col[g.column].push_back(out.speedup);
    changed += out.plan_changed;
    worst_overhead = std::max(worst_overhead, out.monitor_overhead);
    table.AddRow({std::to_string(i + 1), ColumnName(*pair.t, g.column),
                  Pct(g.target_selectivity), ShortPlan(out.plan_before),
                  ShortPlan(out.plan_after),
                  FormatDouble(out.time_before_ms, 1),
                  FormatDouble(out.time_after_ms, 1), Pct(out.speedup),
                  Pct(out.monitor_overhead)});
  }
  table.Print();

  std::printf("\nPer-column mean speedup:\n");
  for (const auto& [col, speeds] : by_col) {
    double sum = 0;
    for (double s : speeds) sum += s;
    std::printf("  %-3s mean=%s over %zu queries\n",
                ColumnName(*pair.t, col), Pct(sum / speeds.size()).c_str(),
                speeds.size());
  }
  std::printf(
      "\nSUMMARY fig8: %d/%zu join plans changed; max monitoring overhead "
      "%s (paper: <=2%%)\n",
      changed, queries.size(), Pct(worst_overhead).c_str());
  return 0;
}
